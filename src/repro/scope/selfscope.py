"""selfscope: Loom observing itself (the §6 case study, turned inward).

The paper's flagship deployment is Loom capturing telemetry *about* an
observability pipeline.  selfscope closes the loop: the loomscope
registry that Loom's own hot paths feed (ingest counters, flush-latency
histograms, reader fallbacks — :mod:`repro.core.metrics`) is
periodically published back into a Loom instance as ordinary telemetry,
through the same :class:`~repro.daemon.otel.OtelLoomExporter` adapter
any external source would use.  From then on the standard query
operators answer questions about Loom itself::

    scope = SelfScope(daemon)
    ... ingest ...
    scope.publish()
    p99 = scope.percentile("loom.log.flush_latency_ns",
                           {"log": "record"}, t_range, 99.0)

Two design points keep the loop sane:

* **Exact percentiles.**  Registry histograms hold bin counts, which
  bound a percentile but do not pin it.  Histograms created with a
  ``sample_window`` retain their most recent raw observations;
  :meth:`SelfScope.publish` drains that window and pushes each raw
  value as its own record, so ``indexed_aggregate``'s percentile over
  the selfscope source is *exact* — the same order statistic a full
  sort of the retained samples would give.
* **Recursion guard.**  Publishing pushes records, and pushing records
  bumps the very counters being published.  ``publish`` is guarded by a
  ``_publishing`` flag (re-entrant calls return immediately) and reads
  one registry snapshot up front: the ingest activity caused by a
  publication is observed by the *next* publication, making the
  feedback loop a sequence of well-founded cycles instead of unbounded
  recursion.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..core.metrics import Histogram, MetricsRegistry
from ..core.operators import QueryResult
from ..daemon.monitor import MonitoringDaemon
from ..daemon.otel import OtelLoomExporter, OtelMetricPoint


def instrument_point_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Flatten a metric identity into one OTel instrument name.

    ``loom.log.flush_latency_ns`` with ``(("log", "record"),)`` becomes
    ``loom.log.flush_latency_ns{log=record}`` — readable, unique per
    label set, and stable across publications (it names the Loom
    source that carries the series).
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class SelfScope:
    """Publishes a loomscope registry into a Loom-hosting daemon.

    Args:
        daemon: the daemon whose Loom receives the metric records.  In
            the dogfooding configuration this is the *same* daemon whose
            registry is being published (Loom's own log holds Loom's own
            telemetry); pointing it at a second, dedicated daemon gives
            an out-of-band observer instead.
        registry: the registry to publish; defaults to the registry of
            the daemon's own Loom instance.
        value_range: ``(lo, hi)`` histogram-index range for the metric
            sources, in the published values' units.  Defaults to
            1 µs – 10 s in nanoseconds, matching the latency metrics'
            bin layout.
    """

    def __init__(
        self,
        daemon: MonitoringDaemon,
        registry: Optional[MetricsRegistry] = None,
        value_range: Tuple[float, float] = (1_000.0, 10_000_000_000.0),
    ) -> None:
        self.daemon = daemon
        self.registry = registry if registry is not None else daemon.loom.metrics
        self.exporter = OtelLoomExporter(
            daemon, duration_range_us=value_range, duration_bins=28
        )
        self.published_points = 0
        self.publish_cycles = 0
        self._publishing = False

    # ------------------------------------------------------------------
    def publish(self) -> int:
        """Run one publication cycle; returns the points exported.

        Counters and gauges are published as one metric point each
        (current value).  Histograms with a sample window have their
        retained raw observations drained and published one point per
        observation — the stream that makes percentile queries exact.
        Re-entrant calls (a publication observing itself) are dropped
        by the recursion guard.
        """
        if self._publishing:
            return 0
        self._publishing = True
        try:
            exported = 0
            snapshot = self.registry.snapshot()
            for metric in snapshot.metrics:
                if metric.kind in ("counter", "gauge"):
                    self.exporter.export_metric(
                        OtelMetricPoint(
                            instrument=instrument_point_name(
                                metric.name, metric.labels
                            ),
                            value=float(metric.value),
                        )
                    )
                    exported += 1
            # Raw sample drain happens against the live instruments (the
            # snapshot carries bin counts, not samples); each instrument
            # has a single drainer — this scope.
            for instrument in self.registry.instruments():
                if not isinstance(instrument, Histogram):
                    continue
                point_name = instrument_point_name(
                    instrument.name, instrument.labels
                )
                for value in instrument.drain_samples():
                    self.exporter.export_metric(
                        OtelMetricPoint(instrument=point_name, value=value)
                    )
                    exported += 1
            self.daemon.sync()
            self.published_points += exported
            self.publish_cycles += 1
            return exported
        finally:
            self._publishing = False

    # ------------------------------------------------------------------
    # Query conveniences over the published series
    # ------------------------------------------------------------------
    def source_name(
        self, metric_name: str, labels: Optional[Mapping[str, str]] = None
    ) -> str:
        """The daemon source name carrying a published metric series."""
        normalized: Tuple[Tuple[str, str], ...] = tuple(
            sorted((str(k), str(v)) for k, v in (labels or {}).items())
        )
        return self.exporter.metric_source_name(
            instrument_point_name(metric_name, normalized)
        )

    def percentile(
        self,
        metric_name: str,
        labels: Optional[Mapping[str, str]],
        t_range: Tuple[int, int],
        percentile: float,
        trace: bool = False,
    ) -> QueryResult:
        """Exact percentile of a published metric's raw samples.

        This is ``indexed_aggregate`` over Loom's own log — e.g.
        ``percentile("loom.log.flush_latency_ns", {"log": "record"},
        t_range, 99.0)`` answers "p99 flush latency" from the records
        selfscope published.
        """
        return self.daemon.aggregate(
            self.source_name(metric_name, labels),
            "value",
            t_range,
            "percentile",
            percentile=percentile,
            trace=trace,
        )

    def aggregate(
        self,
        metric_name: str,
        labels: Optional[Mapping[str, str]],
        t_range: Tuple[int, int],
        method: str,
        trace: bool = False,
    ) -> QueryResult:
        """Distributive aggregate over a published metric's samples."""
        return self.daemon.aggregate(
            self.source_name(metric_name, labels),
            "value",
            t_range,
            method,
            trace=trace,
        )


__all__ = ["SelfScope", "instrument_point_name"]
