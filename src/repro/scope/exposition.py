"""Prometheus-style text exposition of a loomscope registry snapshot.

The format follows the Prometheus text exposition conventions closely
enough to be scrape-parseable — ``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` line per sample, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count`` —
without claiming full spec compliance (no timestamps, no exemplars;
this repository has no network to scrape over anyway).  It exists so
humans and CI artifacts get one canonical flat rendering of "what does
Loom think is happening inside itself".
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..core.metrics import MetricValue, RegistrySnapshot

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Map a dotted metric name to a Prometheus-legal one."""
    return _NAME_OK.sub("_", name)


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _merge_labels(
    labels: Tuple[Tuple[str, str], ...], extra: Dict[str, str]
) -> Tuple[Tuple[str, str], ...]:
    merged = dict(labels)
    merged.update(extra)
    return tuple(sorted(merged.items()))


def render_exposition(snapshot: RegistrySnapshot) -> str:
    """Render a registry snapshot as Prometheus-style text."""
    lines: List[str] = []
    seen_headers: set = set()
    for metric in snapshot.metrics:
        name = _sanitize(metric.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
        lines.extend(_render_metric(name, metric))
    return "\n".join(lines)


def _render_metric(name: str, metric: MetricValue) -> List[str]:
    if metric.histogram is None:
        return [f"{name}{_render_labels(metric.labels)} {metric.value}"]
    hist = metric.histogram
    lines: List[str] = []
    # Cumulative buckets over the spec's *finite* upper edges; the
    # histogram's two outlier bins fold into the first bucket and +Inf.
    cumulative = 0
    counts = hist.bin_counts
    edges = hist.spec.edges
    # bin 0 is the low outlier bin (< edges[0]); interior bin i covers
    # [edges[i-1], edges[i]); the last bin is the high outlier bin.
    for i, edge in enumerate(edges):
        cumulative += counts[i]  # everything strictly below this edge
        labels = _merge_labels(metric.labels, {"le": repr(float(edge))})
        lines.append(f"{name}_bucket{_render_labels(labels)} {cumulative}")
    labels = _merge_labels(metric.labels, {"le": "+Inf"})
    lines.append(f"{name}_bucket{_render_labels(labels)} {hist.count}")
    base = _render_labels(metric.labels)
    lines.append(f"{name}_sum{base} {hist.sum}")
    lines.append(f"{name}_count{base} {hist.count}")
    return lines
