"""loomscope surfaces: exposition and the selfscope feedback loop.

:mod:`repro.core.metrics` is the capture side of Loom's
self-observation registry; this package is the *consumption* side:

* :mod:`repro.scope.exposition` — Prometheus-style text rendering of a
  registry snapshot (the CLI ``stats`` verb, the CI failure artifact).
* :mod:`repro.scope.selfscope` — the dogfooding loop of the paper's §6
  case study turned inward: Loom's own metrics are published back into
  a Loom source, so ``indexed_aggregate`` answers questions like
  "p99 flush latency over the last minute" from Loom's own log.

Everything here is subject to loomlint rule LOOM111: timestamps come
from :mod:`repro.core.clock`, never from ``time.*`` directly.
"""

from .exposition import render_exposition
from .selfscope import SelfScope

__all__ = ["SelfScope", "render_exposition"]
