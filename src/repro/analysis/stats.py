"""Statistics helpers shared by queries, tests, and benchmarks.

Loom's percentile semantics are *nearest-rank* (inverted CDF): the p-th
percentile of N values is the smallest value whose cumulative count
reaches ``ceil(p/100 · N)``.  That is the definition the chunk-index CDF
walk implements, so the reference implementations here (and numpy's
``method="inverted_cdf"``) agree with Loom bit-for-bit — which the test
suite asserts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple


def nearest_rank_percentile(values: Sequence[float], percentile: float) -> float:
    """Reference nearest-rank percentile (matches Loom and numpy
    ``inverted_cdf``)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(percentile / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """count/sum/min/max/mean of a value sequence (empty-safe)."""
    if not values:
        return {"count": 0.0, "sum": 0.0, "min": float("nan"), "max": float("nan"), "mean": float("nan")}
    total = float(sum(values))
    return {
        "count": float(len(values)),
        "sum": total,
        "min": float(min(values)),
        "max": float(max(values)),
        "mean": total / len(values),
    }


def merge_histograms(histograms: Iterable[Dict[int, int]]) -> Dict[int, int]:
    """Sum per-bin counts across partial histograms."""
    merged: Dict[int, int] = {}
    for histogram in histograms:
        for bin_idx, count in histogram.items():
            merged[bin_idx] = merged.get(bin_idx, 0) + count
    return merged


def cdf_target_bin(
    counts: Dict[int, int], percentile: float
) -> Tuple[int, int, int]:
    """Locate the bin containing a percentile's rank.

    Returns ``(bin_idx, rank, cumulative_before)`` — the core step of the
    paper's holistic-aggregate strategy, reused by the distributed
    coordinator.
    """
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty histogram")
    rank = max(1, math.ceil(percentile / 100.0 * total))
    cumulative = 0
    for bin_idx in sorted(counts):
        if cumulative + counts[bin_idx] >= rank:
            return bin_idx, rank, cumulative
        cumulative += counts[bin_idx]
    raise AssertionError("rank not reachable")  # pragma: no cover
