"""Composed observability queries built from Loom's operators.

The paper's drill-downs frequently aggregate a *subset* of a source's
records (e.g. only ``sendto`` syscalls, only ``pread64`` calls).  Loom's
histogram indexes support this with a **sentinel UDF**: the index function
maps out-of-subset records to a sentinel value below the histogram's first
edge, so they all land in the low outlier bin and every other bin contains
only subset records.  Subset max/scan queries then come straight from the
operators; subset percentiles need a small composition implemented here:
bin counts (minus the sentinel bin) form the CDF, and only the target
bin's chunks are scanned — the same strategy as section 4.3, restricted to
the subset.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.loom import Loom
from ..core.operators import QueryStats, bin_histogram, indexed_scan
from ..core.record import Record
from ..core.snapshot import Snapshot

#: Sentinel returned by subset index UDFs for out-of-subset records; any
#: value below the histogram's first edge works (it lands in bin 0).
SENTINEL = -1.0


def subset_percentile(
    loom: Loom,
    source_id: int,
    index_id: int,
    t_range: Tuple[int, int],
    percentile: float,
    sentinel_bins: Sequence[int] = (0,),
    snapshot: Optional[Snapshot] = None,
    stats: Optional[QueryStats] = None,
) -> Optional[float]:
    """Exact percentile over a sentinel-indexed subset of a source.

    ``sentinel_bins`` are excluded from the CDF (bin 0 by default — the
    low outlier bin where the sentinel lands).  Returns ``None`` when the
    subset is empty in the window.
    """
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must be in [0, 100]")
    snap = snapshot or loom.snapshot()
    index = loom.record_log.get_index(index_id)
    counts = bin_histogram(
        snap, source_id, index, t_range[0], t_range[1], stats=stats
    )
    for bin_idx in sentinel_bins:
        counts.pop(bin_idx, None)
    total = sum(counts.values())
    if total == 0:
        return None
    rank = max(1, math.ceil(percentile / 100.0 * total))
    cumulative = 0
    target_bin = None
    for bin_idx in sorted(counts):
        if counts[bin_idx] == 0:
            continue
        if cumulative + counts[bin_idx] >= rank:
            target_bin = bin_idx
            break
        cumulative += counts[bin_idx]
    assert target_bin is not None
    lo, hi = index.spec.bin_range(target_bin)
    values: List[float] = []
    for record in indexed_scan(
        snap, source_id, index, t_range[0], t_range[1], v_min=lo, v_max=hi,
        stats=stats,
    ):
        value = index.index_func(record.payload)
        if index.spec.bin_of(value) == target_bin:
            values.append(value)
    values.sort()
    return values[rank - cumulative - 1]


def subset_records_above(
    loom: Loom,
    source_id: int,
    index_id: int,
    t_range: Tuple[int, int],
    threshold: float,
    snapshot: Optional[Snapshot] = None,
    stats: Optional[QueryStats] = None,
) -> List[Record]:
    """Subset records with indexed value >= threshold (sentinel-safe as
    long as the threshold exceeds the sentinel)."""
    snap = snapshot or loom.snapshot()
    index = loom.record_log.get_index(index_id)
    return list(
        indexed_scan(
            snap, source_id, index, t_range[0], t_range[1], v_min=threshold,
            stats=stats,
        )
    )


def subset_tail_records(
    loom: Loom,
    source_id: int,
    index_id: int,
    t_range: Tuple[int, int],
    percentile: float,
    snapshot: Optional[Snapshot] = None,
    stats: Optional[QueryStats] = None,
) -> Tuple[Optional[float], List[Record]]:
    """The composed data-dependent query over a sentinel-indexed subset:
    find the subset percentile, then fetch subset records at/above it."""
    snap = snapshot or loom.snapshot()
    threshold = subset_percentile(
        loom, source_id, index_id, t_range, percentile, snapshot=snap, stats=stats
    )
    if threshold is None:
        return None, []
    return threshold, subset_records_above(
        loom, source_id, index_id, t_range, threshold, snapshot=snap, stats=stats
    )
