"""Cross-source temporal correlation (the drill-down workflow of §2.1).

The paper's motivating investigation is a chain of correlations: slow
requests ↔ slow ``recv`` syscalls ↔ mangled packets, discovered by
querying each source *around the timestamps* of anomalies in another.
These helpers compose Loom's operators into that workflow:

* :func:`records_above_percentile` — the data-dependent value-range query
  ("requests above the 99.99th percentile"): a percentile ``aggregate``
  followed by a ``scan_indexed`` above the result.
* :func:`correlate_windows` — for each anchor record, fetch records of
  another source within a ± window (one ``scan`` per anchor).
* :class:`CorrelationReport` — pairs every anchor with its correlates and
  counts coverage, which is how the tests assert that Loom finds all six
  needles while a sampled store cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.loom import Loom
from ..core.operators import QueryStats
from ..core.record import Record
from ..core.snapshot import Snapshot


@dataclass
class CorrelationReport:
    """Anchors and the correlated records found near each."""

    window_before_ns: int
    window_after_ns: int
    matches: List[Tuple[Record, List[Record]]] = field(default_factory=list)

    @property
    def anchor_count(self) -> int:
        return len(self.matches)

    @property
    def correlated_count(self) -> int:
        """Anchors that found at least one correlate."""
        return sum(1 for _, found in self.matches if found)

    def all_correlates(self) -> List[Record]:
        out: List[Record] = []
        for _, found in self.matches:
            out.extend(found)
        return out


def records_above_percentile(
    loom: Loom,
    source_id: int,
    index_id: int,
    t_range: Tuple[int, int],
    percentile: float,
    snapshot: Optional[Snapshot] = None,
    stats: Optional[QueryStats] = None,
) -> Tuple[Optional[float], List[Record]]:
    """Data-dependent range query: records at/above the p-th percentile.

    Composes ``aggregate`` (find the threshold) with ``scan_indexed``
    (fetch records at or above it), pinned to one snapshot so the two
    steps see identical data.  A caller-supplied ``stats`` accumulates
    the work counters of both steps (merged from each
    :class:`~repro.core.operators.QueryResult`).
    """
    snap = snapshot or loom.snapshot()
    result = loom.aggregate(
        source_id, index_id, t_range, "percentile", percentile=percentile,
        snapshot=snap,
    )
    if stats is not None:
        stats.merge(result.stats)
    if result.value is None:
        return None, []
    scan = loom.scan_indexed(
        source_id, index_id, t_range, (result.value, float("inf")),
        snapshot=snap,
    )
    if stats is not None:
        stats.merge(scan.stats)
    return result.value, scan.records or []


def correlate_windows(
    loom: Loom,
    anchors: Sequence[Record],
    target_source_id: int,
    window_before_ns: int,
    window_after_ns: int,
    predicate: Optional[Callable[[Record], bool]] = None,
    snapshot: Optional[Snapshot] = None,
) -> CorrelationReport:
    """For each anchor, raw-scan ``target_source_id`` in a ± time window.

    ``predicate`` optionally filters the correlates (e.g. "destination
    port is not the Redis port" to spot mangled packets).
    """
    snap = snapshot or loom.snapshot()
    report = CorrelationReport(
        window_before_ns=window_before_ns, window_after_ns=window_after_ns
    )
    for anchor in anchors:
        t_range = (
            anchor.timestamp - window_before_ns,
            anchor.timestamp + window_after_ns,
        )
        found = loom.scan(target_source_id, t_range, snapshot=snap).records or []
        if predicate is not None:
            found = [r for r in found if predicate(r)]
        report.matches.append((anchor, found))
    return report


def drill_down(
    loom: Loom,
    anchor_source: int,
    anchor_index: int,
    t_range: Tuple[int, int],
    percentile: float,
    target_source: int,
    window_ns: int,
    predicate: Optional[Callable[[Record], bool]] = None,
) -> Tuple[Optional[float], CorrelationReport]:
    """The full §2.1 drill-down: outliers in one source, correlates in
    another, under a single snapshot."""
    snap = loom.snapshot()
    threshold, anchors = records_above_percentile(
        loom, anchor_source, anchor_index, t_range, percentile, snapshot=snap
    )
    report = correlate_windows(
        loom, anchors, target_source, window_ns, window_ns,
        predicate=predicate, snapshot=snap,
    )
    return threshold, report
