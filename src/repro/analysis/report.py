"""Plain-text table formatting for the benchmark harness.

Every benchmark regenerates a paper table or figure; these helpers render
the rows the same way across benches so EXPERIMENTS.md and the bench logs
read uniformly: a title line, a header, aligned columns, and optional
paper-expectation columns for side-by-side comparison.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width table as a string."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> None:
    print()
    print(format_table(title, headers, rows, note=note))
    print()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def ratio(a: float, b: float) -> str:
    """Human-readable speedup/slowdown ratio ("12.3x")."""
    if b == 0:
        return "inf"
    return f"{a / b:.1f}x"
