"""Analysis helpers: composed drill-down queries, correlation, statistics,
and benchmark report formatting."""

from .correlate import (
    CorrelationReport,
    correlate_windows,
    drill_down,
    records_above_percentile,
)
from .queries import (
    SENTINEL,
    subset_percentile,
    subset_records_above,
    subset_tail_records,
)
from .report import format_table, print_table, ratio
from .stats import (
    cdf_target_bin,
    merge_histograms,
    nearest_rank_percentile,
    summarize,
)

__all__ = [
    "CorrelationReport",
    "cdf_target_bin",
    "correlate_windows",
    "drill_down",
    "format_table",
    "merge_histograms",
    "nearest_rank_percentile",
    "print_table",
    "ratio",
    "records_above_percentile",
    "subset_percentile",
    "subset_records_above",
    "subset_tail_records",
    "SENTINEL",
    "summarize",
]
