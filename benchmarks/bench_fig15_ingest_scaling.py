"""Figure 15: data-structure ingest throughput vs record size.

The paper benchmarks Loom's hybrid log against LMDB's B+-tree, RocksDB's
LSM-tree, and FishStore's log for 8-1024-byte records, also granting the
baselines extra threads (3 for FishStore, 8 for RocksDB) until they match
Loom.  Headline shapes: Loom is fastest for small records (log append is
a few hundred cycles; small writes are CPU-bound); the gap narrows as
record size amortizes fixed costs and the disk becomes the bottleneck;
FishStore (3 cpus) matches Loom at 256 B and is best at 1024 B (1.4M/s);
RocksDB (8 cpus) marginally beats Loom only at 1024 B (1.1M/s); LMDB
never matches.

Cross-system throughput comes from the calibrated structure cost model
(Python wall-clock measures interpreter overhead, not the algorithms'
cycle costs — see the module docstring of repro.simulate.structures).
The *mechanisms* behind the model's constants are measured on this
repository's real implementations: LSM write amplification, B-tree page
splits, and the log's byte-for-byte writes.
"""

import pytest

from conftest import once
from repro.baselines import BPlusTree, FishStore, LsmKv
from repro.core import Loom, LoomConfig, VirtualClock
from repro.simulate import fig15_models, loom_structure, rocksdb_structure
from repro.workloads import FIG15_RECORD_SIZES, fixed_size_records


def test_fig15_throughput_table(benchmark, report):
    once(benchmark, lambda: _fig15_table(report))


def _fig15_table(report):
    models = fig15_models()
    rows = []
    for model in models:
        rows.append(
            [model.name]
            + [f"{model.throughput(s)/1e6:.2f}M" for s in FIG15_RECORD_SIZES]
            + [f"{model.probe_fraction*100:.0f}%"]
        )
    report(
        "Figure 15: ingest throughput vs record size (records/s, cost model)",
        ["structure"] + [f"{s} B" for s in FIG15_RECORD_SIZES] + ["probe effect"],
        rows,
        note="paper anchors: Loom ~9M/s small records on 1 cpu; FishStore-3cpu "
        "matches Loom at 256 B, best at 1024 B (1.4M); RocksDB-8cpu 1.1M at "
        "1024 B; probe: RocksDB-8cpu 29%, FishStore-3cpu 19%, Loom 2%",
    )
    by_name = {m.name: m for m in models}
    loom = by_name["Loom (1 cpu)"]
    # Loom fastest at small records against every configuration.
    for size in (8, 64):
        assert all(
            loom.throughput(size) >= m.throughput(size)
            for m in models
            if m is not loom
        )
    # FishStore (3 cpu) matches Loom at 256 B.
    fs3 = by_name["FishStore (3 cpu)"]
    assert abs(fs3.throughput(256) - loom.throughput(256)) / loom.throughput(256) < 0.1
    # At 1024 B: FishStore best; RocksDB-8cpu marginally above Loom.
    rdb8 = by_name["RocksDB (8 cpu)"]
    assert fs3.throughput(1024) > rdb8.throughput(1024) > loom.throughput(1024)
    assert rdb8.throughput(1024) < 1.25 * loom.throughput(1024)
    # LMDB never matches Loom.
    lmdb = by_name["LMDB (1 cpu)"]
    assert all(lmdb.throughput(s) < loom.throughput(s) for s in FIG15_RECORD_SIZES)
    # The advantage shrinks with record size (the paper's narrowing gap).
    gaps = [loom.throughput(s) / rdb8.throughput(s) for s in FIG15_RECORD_SIZES]
    assert gaps[0] > gaps[-1]


def test_fig15_mechanism_table(benchmark, report):
    once(benchmark, lambda: _mechanism_table(report))


def _mechanism_table(report):
    """Measured on the real implementations: why trees cost more.

    The cost model's write_factor/per-byte constants correspond to
    mechanisms these engines actually exhibit: the LSM rewrites every
    record multiple times through compaction; the B-tree splits pages;
    the log writes each byte exactly once and never rewrites.
    """
    n = 30_000
    payloads = fixed_size_records(n, 64)

    kv = LsmKv(memtable_entries=1_000, fanout=3)
    for i, p in enumerate(payloads):
        kv.put(i, p)
    lsm_wa = kv.write_amplification

    tree = BPlusTree(order=64)
    for i, p in enumerate(payloads):
        tree.append(i, p)

    loom = Loom(
        LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 20),
        clock=VirtualClock(),
    )
    loom.define_source(1)
    for p in payloads:
        loom.push(1, p)
    loom.sync()
    stats = loom.record_log.log.stats
    loom_wa = stats.bytes_flushed / max(1, stats.bytes_appended)

    fs = FishStore(max_psfs=0)
    for i, p in enumerate(payloads):
        fs.append(1, i, p)

    rows = [
        ["Loom hybrid log", f"{loom_wa:.2f}x bytes rewritten", "0 (append-only)"],
        ["FishStore log", "1.00x bytes rewritten", "0 (append-only)"],
        ["RocksDB-like LSM", f"{lsm_wa:.2f}x entries rewritten", f"{kv.stats.compactions} compactions"],
        ["LMDB-like B+-tree", "page construction per insert", f"{tree.page_splits} page splits"],
    ]
    report(
        "Figure 15 mechanism (measured on this repo's implementations)",
        ["structure", "write amplification", "maintenance events"],
        rows,
        note=f"{n} x 64 B records; LSM merged {kv.stats.entries_merged:,} entries during compaction",
    )
    assert lsm_wa > 1.0
    assert tree.page_splits > 0
    assert loom_wa <= 1.01  # the hybrid log never rewrites


# ----------------------------------------------------------------------
# Measured append-path benchmarks (per structure, 64 B records).
# Absolute numbers are Python-substrate-bound; they are reported for
# completeness, not comparison (see module docstring).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def payloads_64b():
    return fixed_size_records(5_000, 64)


@pytest.mark.parametrize("batched", [False, True], ids=["push", "push_many"])
def test_bench_loom_append_64b(benchmark, payloads_64b, batched):
    """Loom append path, per-record vs batched (the ``batched`` flag).

    The ``push_many`` variant frames and lands the whole payload list in
    one call per round; comparing the two rows in the pytest-benchmark
    table shows the batch fast path's amortization directly.
    """
    loom = Loom(
        LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
        clock=VirtualClock(),
    )
    loom.define_source(1)

    if batched:
        def run():
            loom.push_many(1, payloads_64b)
    else:
        def run():
            for p in payloads_64b:
                loom.push(1, p)

    benchmark(run)
    loom.close()


def test_batched_ingest_speedup_table(benchmark, report, payloads_64b):
    once(benchmark, lambda: _batched_speedup_table(report, payloads_64b))


def _batched_speedup_table(report, payloads_64b):
    """Measured speedup of push_many over push at several batch sizes."""
    import time

    def throughput(batch_size, batched, target_records=40_000):
        loom = Loom(
            LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
            clock=VirtualClock(),
        )
        loom.define_source(1)
        batch = payloads_64b[:batch_size]
        pushed = 0
        start = time.perf_counter()
        while pushed < target_records:
            if batched:
                loom.push_many(1, batch)
            else:
                for p in batch:
                    loom.push(1, p)
            pushed += len(batch)
        elapsed = time.perf_counter() - start
        loom.close()
        return pushed / elapsed

    single = throughput(256, batched=False)
    rows = []
    speedups = {}
    for batch_size in (16, 64, 256, 1024):
        batched = throughput(batch_size, batched=True)
        speedups[batch_size] = batched / single
        rows.append(
            [batch_size, f"{single/1e3:.0f}k/s", f"{batched/1e3:.0f}k/s",
             f"{batched/single:.1f}x"]
        )
    report(
        "Batched ingest: push_many vs push (64 B records, measured)",
        ["batch size", "push", "push_many", "speedup"],
        rows,
        note="one framed append + one summary/timestamp-index/publish pass "
        "per batch; larger batches amortize more of the per-record cost",
    )
    # The amortization must be real and must grow with batch size.
    assert speedups[1024] > speedups[16] > 1.0


def test_bench_lsm_put_64b(benchmark, payloads_64b):
    kv = LsmKv(memtable_entries=10_000)
    counter = [0]

    def run():
        base = counter[0]
        for i, p in enumerate(payloads_64b):
            kv.put(base + i, p)
        counter[0] += len(payloads_64b)

    benchmark(run)


def test_bench_btree_append_64b(benchmark, payloads_64b):
    tree = BPlusTree(order=64)
    counter = [0]

    def run():
        base = counter[0]
        for i, p in enumerate(payloads_64b):
            tree.append(base + i, p)
        counter[0] += len(payloads_64b)

    benchmark(run)


def test_bench_fishstore_append_64b(benchmark, payloads_64b):
    fs = FishStore(max_psfs=0)

    def run():
        for i, p in enumerate(payloads_64b):
            fs.append(1, i, p)

    benchmark(run)
