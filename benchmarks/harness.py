"""Shared builders for the benchmark suite.

Loading the case-study workloads into each engine is the expensive part of
benchmarking, so the builders memoize per (workload, scale) and the bench
files share the loaded engines.  The scale factor trades fidelity for
runtime; the default keeps the full ``pytest benchmarks/`` run in minutes
while preserving every query's relative shape (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.fishstore import FishStore, source_equals
from repro.baselines.tsdb import InfluxLite, Point
from repro.core.histogram import exponential_edges
from repro.daemon import MonitoringDaemon
from repro.workloads import (
    RedisCaseStudy,
    RocksDbCaseStudy,
    events,
)

#: Workload thinning factor for benchmarks (timestamps stay at paper-true
#: virtual time).  1e-3 -> ~115k records for Redis, ~159k for RocksDB.
BENCH_SCALE = 1e-3
PHASE_DURATION_S = 10.0

_SYSCALL_NAMES = {
    events.SYS_SENDTO: "sendto",
    events.SYS_RECVFROM: "recvfrom",
    events.SYS_PREAD64: "pread64",
    events.SYS_WRITE: "write",
    events.SYS_FUTEX: "futex",
}

_MEASUREMENTS = {
    events.SRC_APP: "app",
    events.SRC_SYSCALL: "syscall",
    events.SRC_PACKET: "packet",
    events.SRC_PAGECACHE: "pagecache",
}


@dataclass
class LoadedWorkload:
    """One case-study workload loaded into all three systems."""

    name: str
    phases: list
    daemon: MonitoringDaemon  # Loom
    fishstore: FishStore
    tsdb: InfluxLite  # "InfluxDB-idealized": preloaded, queries only
    #: FishStore PSF ids by name (filled in by the loader).
    psf: Optional[Dict[str, int]] = None

    @property
    def loom(self):
        return self.daemon.loom

    def t_all(self) -> Tuple[int, int]:
        return 0, self.daemon.clock.now()

    def phase_range(self, phase: int) -> Tuple[int, int]:
        p = self.phases[phase - 1]
        return p.t_start_ns, p.t_end_ns


_CACHE: Dict[str, LoadedWorkload] = {}


def tsdb_select_rows(engine: InfluxLite, measurement, tags, t_start, t_end):
    """Row-wise point materialization for the InfluxDB-idealized queries.

    InfluxDB's query engine decodes TSM blocks and evaluates functions
    like ``percentile()`` per point; representing that work as per-row
    Python materialization keeps all three systems in the same cost
    currency (Loom and FishStore also decode records in Python).  Using
    the engine's vectorized ``select`` here would hand the TSDB a
    C-speed scan no real deployment of it gets relative to the others.
    """
    rows = []
    keys = engine.tag_index.lookup(measurement, tags)
    for segment in engine.segments.segments():
        if not segment.overlaps(t_start, t_end):
            continue
        for key in keys:
            ts, vs = segment.series_points(key, t_start, t_end)
            for i in range(len(ts)):
                rows.append((int(ts[i]), float(vs[i])))
    for key in keys:
        for t, v in engine.memtable.points_for(key, t_start, t_end):
            rows.append((t, v))
    engine.stats.points_scanned += len(rows)
    return rows


def tsdb_percentile_rows(rows, percentile):
    """Row-wise nearest-rank percentile (matches Loom's definition)."""
    import math

    values = sorted(v for _, v in rows)
    if not values:
        return None
    rank = max(1, math.ceil(percentile / 100.0 * len(values)))
    return values[rank - 1]


def _tsdb_point(timestamp: int, source_id: int, payload: bytes) -> Point:
    """Map a workload record onto the TSDB's data model the way the
    paper's InfluxDB setup would (kind/port as tags, latency as value)."""
    measurement = _MEASUREMENTS[source_id]
    if source_id in (events.SRC_APP, events.SRC_SYSCALL):
        kind = events.latency_kind(payload)
        tag = _SYSCALL_NAMES.get(kind, str(kind))
        return Point.make(
            measurement, {"kind": tag}, timestamp, events.latency_value(payload)
        )
    if source_id == events.SRC_PACKET:
        dst = events.unpack_packet(payload)[1]
        return Point.make(
            measurement,
            {"mangled": "1" if dst == events.MANGLED_PORT else "0"},
            timestamp,
            float(events.unpack_packet(payload)[2]),
        )
    kind = events.unpack_pagecache(payload)[0]
    return Point.make(measurement, {"event": str(kind)}, timestamp, 1.0)


def load_redis(scale: float = BENCH_SCALE) -> LoadedWorkload:
    key = f"redis-{scale}"
    if key in _CACHE:
        return _CACHE[key]
    workload = RedisCaseStudy(scale=scale, phase_duration_s=PHASE_DURATION_S)
    phases = workload.generate_all()

    daemon = MonitoringDaemon()
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("packet", events.SRC_PACKET)
    daemon.add_index(
        "app", "latency", events.latency_value, exponential_edges(10.0, 10_000.0, 16)
    )
    daemon.add_index(
        "syscall", "latency", events.latency_value, exponential_edges(1.0, 10_000.0, 16)
    )

    daemon.add_index(
        "syscall",
        "sendto-latency",
        lambda p: (
            events.latency_value(p)
            if events.latency_kind(p) == events.SYS_SENDTO
            else -1.0
        ),
        exponential_edges(1.0, 10_000.0, 16),
    )

    fishstore = FishStore(max_psfs=3)
    psf_app = fishstore.register_psf("app", source_equals(events.SRC_APP))
    psf_sys = fishstore.register_psf("syscall", source_equals(events.SRC_SYSCALL))
    psf_pkt = fishstore.register_psf("packet", source_equals(events.SRC_PACKET))

    tsdb = InfluxLite(memtable_points=100_000)

    for phase in phases:
        daemon.replay(phase.records)
        for t, sid, payload in phase.records:
            fishstore.append(sid, t, payload)
            tsdb.write(_tsdb_point(t, sid, payload))
    tsdb.flush()

    loaded = LoadedWorkload(
        name="redis", phases=phases, daemon=daemon, fishstore=fishstore, tsdb=tsdb
    )
    loaded.psf = {"app": psf_app, "syscall": psf_sys, "packet": psf_pkt}
    _CACHE[key] = loaded
    return loaded


def load_rocksdb(scale: float = BENCH_SCALE) -> LoadedWorkload:
    key = f"rocksdb-{scale}"
    if key in _CACHE:
        return _CACHE[key]
    workload = RocksDbCaseStudy(scale=scale, phase_duration_s=PHASE_DURATION_S)
    phases = workload.generate_all()

    daemon = MonitoringDaemon()
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("pagecache", events.SRC_PAGECACHE)
    daemon.add_index(
        "app", "latency", events.latency_value, exponential_edges(0.5, 500.0, 16)
    )
    daemon.add_index(
        "syscall",
        "pread-latency",
        lambda p: (
            events.latency_value(p)
            if events.latency_kind(p) == events.SYS_PREAD64
            else -1.0
        ),
        exponential_edges(0.5, 1000.0, 16),
    )
    daemon.add_index(
        "pagecache", "kind", events.pagecache_kind, [1.0, 2.0, 3.0, 4.0]
    )

    fishstore = FishStore(max_psfs=3)
    psf_app = fishstore.register_psf("app", source_equals(events.SRC_APP))
    psf_pread = fishstore.register_psf(
        "pread64",
        lambda sid, p: (
            1
            if sid == events.SRC_SYSCALL
            and events.latency_kind(p) == events.SYS_PREAD64
            else None
        ),
    )
    psf_pc_add = fishstore.register_psf(
        "pagecache-add",
        lambda sid, p: (
            1
            if sid == events.SRC_PAGECACHE
            and events.unpack_pagecache(p)[0] == events.PC_ADD_TO_PAGE_CACHE
            else None
        ),
    )

    tsdb = InfluxLite(memtable_points=100_000)

    for phase in phases:
        daemon.replay(phase.records)
        for t, sid, payload in phase.records:
            fishstore.append(sid, t, payload)
            tsdb.write(_tsdb_point(t, sid, payload))
    tsdb.flush()

    loaded = LoadedWorkload(
        name="rocksdb", phases=phases, daemon=daemon, fishstore=fishstore, tsdb=tsdb
    )
    loaded.psf = {"app": psf_app, "pread64": psf_pread, "pagecache-add": psf_pc_add}
    _CACHE[key] = loaded
    return loaded


# ----------------------------------------------------------------------
# Ingest smoke benchmark (single-record vs batched push)
# ----------------------------------------------------------------------
def run_ingest_smoke(
    duration_s: float = 2.5,
    record_size: int = 64,
    batch_size: int = 512,
    out_path: str = "BENCH_ingest.json",
) -> dict:
    """Quick (~2x ``duration_s``) ingest microbenchmark: records/second of
    per-record ``push`` vs batched ``push_many``, written to ``out_path``
    as JSON.  This is the acceptance check for the batched fast path — the
    reported ``speedup`` is what the PR's throughput claim refers to.
    """
    import json
    import time

    from repro.core import Loom, LoomConfig, VirtualClock
    from repro.workloads import fixed_size_records

    payloads = fixed_size_records(batch_size, record_size)

    def measure(batched: bool) -> float:
        loom = Loom(
            LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
            clock=VirtualClock(),
        )
        loom.define_source(1)
        pushed = 0
        start = time.perf_counter()
        deadline = start + duration_s
        if batched:
            push_many = loom.push_many
            while time.perf_counter() < deadline:
                push_many(1, payloads)
                pushed += batch_size
        else:
            push = loom.push
            while time.perf_counter() < deadline:
                for p in payloads:
                    push(1, p)
                pushed += batch_size
        elapsed = time.perf_counter() - start
        loom.close()
        return pushed / elapsed

    single = measure(batched=False)
    batched = measure(batched=True)
    result = {
        "bench": "ingest_smoke",
        "record_size_bytes": record_size,
        "batch_size": batch_size,
        "duration_s_per_mode": duration_s,
        "records_per_s_single": round(single),
        "records_per_s_batched": round(batched),
        "speedup": round(batched / single, 2),
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    return result


if __name__ == "__main__":
    import json

    print(json.dumps(run_ingest_smoke(), indent=2))
