"""Figure 11: fraction of data dropped on ingest, per workload phase.

InfluxDB falls behind the end-to-end workloads and drops 38-93% of data;
FishStore and Loom capture everything.  Drop fractions are arrival-vs-
capacity arithmetic at the paper's native rates, so they come from the
calibrated cost model; Loom's and FishStore's completeness is additionally
*measured* by replaying the scaled workload and counting.
"""

import pytest

from conftest import once
from harness import BENCH_SCALE, load_redis, load_rocksdb
from repro.simulate import (
    PAPER_HOST,
    fishstore_model,
    influxdb_model,
    loom_model,
    simulate_ingest,
)

PHASE_RATES = {
    "Redis": [865_000, 3_565_000, 7_065_000],
    "RocksDB": [4_700_000, 7_900_000, 7_939_000],
}
PAPER_INFLUX = {
    "Redis": ["38.2%", "86.3%", "90.1%"],
    "RocksDB": ["87.9%", "92.8%", "92.7%"],
}


def test_fig11_drop_table(benchmark, report):
    once(benchmark, lambda: _fig11_table(report))


def _fig11_table(report):
    rows = []
    influx = influxdb_model(e2e=True)
    for workload, rates in PHASE_RATES.items():
        for i, rate in enumerate(rates):
            sim = simulate_ingest(influx, rate)
            fish = simulate_ingest(fishstore_model(3), rate, host=PAPER_HOST)
            loom = simulate_ingest(loom_model(), rate, host=PAPER_HOST)
            rows.append(
                [
                    workload,
                    f"P{i+1}",
                    f"{rate/1e6:.2f}M/s",
                    f"{sim.drop_fraction*100:.1f}%",
                    PAPER_INFLUX[workload][i],
                    f"{fish.drop_fraction*100:.0f}%",
                    f"{loom.drop_fraction*100:.0f}%",
                ]
            )
    report(
        "Figure 11: percentage of data dropped on ingest (simulated at paper rates)",
        ["workload", "phase", "rate", "InfluxDB (sim)", "InfluxDB (paper)", "FishStore", "Loom"],
        rows,
        note="FishStore and Loom capture complete data in the paper and in the model",
    )
    for rates in PHASE_RATES.values():
        for rate in rates:
            assert simulate_ingest(influx, rate).drop_fraction > 0.3
            assert (
                simulate_ingest(loom_model(), rate, host=PAPER_HOST).drop_fraction
                == 0.0
            )


def test_measured_loom_completeness(benchmark, report):
    once(benchmark, lambda: _completeness_table(report))


def _completeness_table(report):
    """Measured: replaying the scaled workloads, Loom ingests every record."""
    rows = []
    for loaded in (load_redis(), load_rocksdb()):
        expected = sum(p.record_count for p in loaded.phases)
        rows.append(
            [
                loaded.name,
                expected,
                loaded.loom.total_records,
                loaded.fishstore.record_count,
                "0%",
            ]
        )
        assert loaded.loom.total_records == expected
        assert loaded.fishstore.record_count == expected
    report(
        f"Figure 11 (measured at scale={BENCH_SCALE}): complete capture",
        ["workload", "offered", "Loom ingested", "FishStore ingested", "dropped"],
        rows,
    )


def test_bench_loom_ingest_phase1(benchmark):
    """Measured Loom ingest throughput on Redis Phase 1 records."""
    from repro.daemon import MonitoringDaemon
    from repro.workloads import RedisCaseStudy, events

    phase = RedisCaseStudy(scale=2e-4, phase_duration_s=10.0).generate_phase(1)

    def ingest():
        daemon = MonitoringDaemon()
        daemon.enable_source("app", events.SRC_APP)
        daemon.replay(phase.records)
        daemon.close()
        return len(phase.records)

    count = benchmark(ingest)
    assert count == phase.record_count
