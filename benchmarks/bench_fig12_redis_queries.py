"""Figure 12: Redis-workload query latencies — Loom vs FishStore vs
InfluxDB-idealized.

Queries per phase (paper Figure 10a):

* P1  "Slow Requests": application records above the 99.99th-percentile
  latency (data-dependent value-range query).
* P2  "Slow Requests" again (over more interleaved data) and "Slow
  sendto Executions": syscall records above the 99.99th percentile of
  sendto latency.
* P3  "Maximum Latency Request" (find the slowest request) and
  "TCP Packet Dump" (all packets in a 10-second window).

The paper's result shapes this bench must reproduce: Loom is fastest
across the board (1.5-46x vs FishStore, 7-160x vs InfluxDB-idealized);
FishStore's queries slow down when later phases interleave more sources
into its log; the packet dump is everyone's slowest query because of
result volume.  InfluxDB is "idealized": preloaded without drops, so only
query latency is compared (its real ingest drops 38-90%, Figure 11).
"""

import numpy as np
import pytest

from conftest import once, time_query
from harness import load_redis, tsdb_percentile_rows, tsdb_select_rows
from repro.analysis import nearest_rank_percentile, records_above_percentile
from repro.core.clock import seconds
from repro.core.operators import QueryStats
from repro.workloads import events


@pytest.fixture(scope="module")
def redis():
    return load_redis()


# ----------------------------------------------------------------------
# Query implementations per system
# ----------------------------------------------------------------------
def loom_slow_requests(loaded, t_range, stats=None):
    threshold, records = records_above_percentile(
        loaded.loom,
        events.SRC_APP,
        loaded.daemon.index_id("app", "latency"),
        t_range,
        99.99,
        stats=stats,
    )
    return records


def fishstore_slow_requests(loaded, t_range):
    values = [
        events.latency_value(r.payload)
        for r in loaded.fishstore.psf_scan(
            loaded.psf["app"], 1, t_start=t_range[0], t_end=t_range[1]
        )
    ]
    threshold = nearest_rank_percentile(values, 99.99)
    return [
        r
        for r in loaded.fishstore.psf_scan(
            loaded.psf["app"], 1, t_start=t_range[0], t_end=t_range[1]
        )
        if events.latency_value(r.payload) >= threshold
    ]


def tsdb_slow_requests(loaded, t_range):
    rows = tsdb_select_rows(loaded.tsdb, "app", None, t_range[0], t_range[1])
    threshold = tsdb_percentile_rows(rows, 99.99)
    return [r for r in rows if r[1] >= threshold]


def loom_slow_sendto(loaded, t_range, stats=None):
    """sendto tail via the sentinel-UDF subset index (see
    repro.analysis.queries): the CDF over bins excludes the sentinel bin,
    so only chunks holding tail sendto records get scanned."""
    from repro.analysis import subset_tail_records

    index_id = loaded.daemon.index_id("syscall", "sendto-latency")
    _, records = subset_tail_records(
        loaded.loom, events.SRC_SYSCALL, index_id, t_range, 99.99, stats=stats
    )
    return records


def fishstore_slow_sendto(loaded, t_range):
    # No PSF was installed for sendto specifically -> full log scan.
    values = [
        events.latency_value(r.payload)
        for r in loaded.fishstore.full_scan(
            predicate=lambda r: (
                r.source_id == events.SRC_SYSCALL
                and events.latency_kind(r.payload) == events.SYS_SENDTO
            ),
            t_start=t_range[0],
            t_end=t_range[1],
        )
    ]
    threshold = nearest_rank_percentile(values, 99.99)
    return [
        r
        for r in loaded.fishstore.full_scan(
            predicate=lambda r: (
                r.source_id == events.SRC_SYSCALL
                and events.latency_kind(r.payload) == events.SYS_SENDTO
                and events.latency_value(r.payload) >= threshold
            ),
            t_start=t_range[0],
            t_end=t_range[1],
        )
    ]


def tsdb_slow_sendto(loaded, t_range):
    rows = tsdb_select_rows(
        loaded.tsdb, "syscall", {"kind": "sendto"}, t_range[0], t_range[1]
    )
    threshold = tsdb_percentile_rows(rows, 99.99)
    return [r for r in rows if r[1] >= threshold]


def loom_max_request(loaded, t_range, stats=None):
    loom = loaded.loom
    snap = loom.snapshot()
    index_id = loaded.daemon.index_id("app", "latency")
    agg = loom.aggregate(
        events.SRC_APP, index_id, t_range, "max", snapshot=snap
    )
    scan = loom.scan_indexed(
        events.SRC_APP, index_id, t_range, (agg.value, agg.value),
        snapshot=snap,
    )
    if stats is not None:
        stats.merge(agg.stats)
        stats.merge(scan.stats)
    return scan.records or []


def fishstore_max_request(loaded, t_range):
    best = None
    for r in loaded.fishstore.psf_scan(
        loaded.psf["app"], 1, t_start=t_range[0], t_end=t_range[1]
    ):
        value = events.latency_value(r.payload)
        if best is None or value > best[0]:
            best = (value, r)
    return [best[1]] if best else []


def tsdb_max_request(loaded, t_range):
    rows = tsdb_select_rows(loaded.tsdb, "app", None, t_range[0], t_range[1])
    maximum = max(v for _, v in rows)
    return [r for r in rows if r[1] >= maximum]


def loom_packet_dump(loaded, window, stats=None):
    result = loaded.loom.scan(events.SRC_PACKET, window)
    if stats is not None:
        stats.merge(result.stats)
    return result.records or []


def fishstore_packet_dump(loaded, window):
    return list(
        loaded.fishstore.psf_scan(
            loaded.psf["packet"], 1, t_start=window[0], t_end=window[1]
        )
    )


def tsdb_packet_dump(loaded, window):
    return tsdb_select_rows(loaded.tsdb, "packet", None, window[0], window[1])


# ----------------------------------------------------------------------
# The figure
# ----------------------------------------------------------------------
def _dump_window(loaded):
    """A 10-second window around the slowest P3 request (paper's dump)."""
    needle = loaded.phases[2].needles[3]
    return (
        needle.request_time_ns - seconds(5),
        needle.request_time_ns + seconds(5),
    )


QUERIES = [
    ("P1", "Slow Requests", 1, loom_slow_requests, fishstore_slow_requests, tsdb_slow_requests),
    ("P2", "Slow Requests", 2, loom_slow_requests, fishstore_slow_requests, tsdb_slow_requests),
    ("P2", "Slow sendto Executions", 2, loom_slow_sendto, fishstore_slow_sendto, tsdb_slow_sendto),
    ("P3", "Maximum Latency Request", 3, loom_max_request, fishstore_max_request, tsdb_max_request),
    ("P3", "TCP Packet Dump", 3, loom_packet_dump, fishstore_packet_dump, tsdb_packet_dump),
]


def test_fig12_query_latency_table(benchmark, report, redis):
    once(benchmark, lambda: _fig12_table(report, redis))


def measure(redis, loom_fn, fish_fn, tsdb_fn, t_range):
    """Latency plus records-touched for each system (one query)."""
    # Per-query decode accounting lives in QueryStats (the record log
    # keeps no read-side counters; see repro.core.operators).
    loom_stats = QueryStats()
    loom_s = time_query(lambda: loom_fn(redis, t_range, stats=loom_stats))
    loom_touched = loom_stats.records_decoded // 3  # 3 timed repeats

    before = redis.fishstore.stats.records_scanned
    fish_s = time_query(lambda: fish_fn(redis, t_range))
    fish_touched = (redis.fishstore.stats.records_scanned - before) // 3

    before = redis.tsdb.stats.points_scanned
    tsdb_s = time_query(lambda: tsdb_fn(redis, t_range))
    tsdb_touched = (redis.tsdb.stats.points_scanned - before) // 3
    return (loom_s, loom_touched), (fish_s, fish_touched), (tsdb_s, tsdb_touched)


def _fig12_table(report, redis):
    rows = []
    loom_wins_fish = 0
    loom_touches_least = 0
    for phase_label, name, phase, loom_fn, fish_fn, tsdb_fn in QUERIES:
        t_range = (
            _dump_window(redis) if name == "TCP Packet Dump" else redis.phase_range(phase)
        )
        (loom_s, loom_n), (fish_s, fish_n), (tsdb_s, tsdb_n) = measure(
            redis, loom_fn, fish_fn, tsdb_fn, t_range
        )
        if loom_s <= fish_s:
            loom_wins_fish += 1
        if loom_n <= fish_n and loom_n <= tsdb_n:
            loom_touches_least += 1
        rows.append(
            [
                phase_label,
                name,
                f"{loom_s*1000:.1f}ms",
                f"{fish_s*1000:.1f}ms",
                f"{tsdb_s*1000:.1f}ms",
                f"{loom_n:,}",
                f"{fish_n:,}",
                f"{tsdb_n:,}",
            ]
        )
    report(
        "Figure 12: Redis workload query latencies (measured, scaled workload)",
        ["phase", "query", "Loom", "FishStore", "InfluxDB-ideal",
         "Loom recs", "FS recs", "Influx recs"],
        rows,
        note="paper: Loom 1.5-46x faster than FishStore, 7-97x than InfluxDB-idealized; "
        "records-touched is the scale-free comparison",
    )
    # Loom must win against FishStore on at least 4 of the 5 queries and
    # touch the fewest records on at least 3 (the packet dump touches the
    # same set everywhere by construction).
    assert loom_wins_fish >= 4
    assert loom_touches_least >= 3


def test_queries_agree_on_slow_requests(benchmark, redis):
    once(benchmark, lambda: _check_agreement(redis))


def _check_agreement(redis):
    """All three systems find the same slow requests (P1)."""
    t_range = redis.phase_range(1)
    loom_r = loom_slow_requests(redis, t_range)
    fish_r = fishstore_slow_requests(redis, t_range)
    assert {r.timestamp for r in loom_r} == {r.timestamp for r in fish_r}
    assert len(tsdb_slow_requests(redis, t_range)) == len(loom_r)


def test_packet_dump_includes_mangled_packet(benchmark, redis):
    once(benchmark, lambda: _check_mangled(redis))


def _check_mangled(redis):
    window = _dump_window(redis)
    packets = loom_packet_dump(redis, window)
    mangled = [
        p
        for p in packets
        if events.unpack_packet(p.payload)[1] == events.MANGLED_PORT
    ]
    assert len(mangled) >= 1


def test_bench_loom_slow_requests(benchmark, redis):
    benchmark(loom_slow_requests, redis, redis.phase_range(1))


def test_bench_loom_max_request(benchmark, redis):
    benchmark(loom_max_request, redis, redis.phase_range(3))


def test_bench_loom_packet_dump(benchmark, redis):
    benchmark(loom_packet_dump, redis, _dump_window(redis))
