"""Figure 2: TSDB index-maintenance CPU and drop fraction vs ingest rate.

The paper's figure shows InfluxDB/ClickHouse spending a growing share of a
16-CPU host on index maintenance as the ingest rate rises, then saturating
(~23%, about four cores) while the drop fraction climbs to 77% at 6M
records/second.  The sweep is resource arithmetic, so it runs on the
calibrated cost model (see repro.simulate.costmodel for the anchors); a
measured micro-benchmark demonstrates the *mechanism* — the TSDB write
path costs far more per record than a log append because of WAL, memtable,
tag-index, sort, and compaction work.
"""

import pytest

from conftest import once
from repro.baselines.fasterlog import AppendLog
from repro.baselines.tsdb import InfluxLite, Point
from repro.simulate import (
    clickhouse_model,
    influxdb_model,
    simulate_ingest,
    sweep_rates,
)
from repro.workloads import rate_sweep


def test_fig2_sweep_table(benchmark, report):
    once(benchmark, lambda: _fig2_sweep(report))


def _fig2_sweep(report):
    rows = []
    for model in (influxdb_model(), clickhouse_model()):
        for outcome in sweep_rates(model, rate_sweep()):
            rows.append(
                [
                    model.name,
                    f"{outcome.offered_rate/1e6:.2f}M",
                    f"{outcome.index_cpu_fraction*100:.1f}%",
                    f"{outcome.index_cores:.1f}",
                    f"{outcome.drop_fraction*100:.1f}%",
                ]
            )
    report(
        "Figure 2: TSDB index-maintenance CPU and drops vs ingest rate (simulated, 16 CPUs)",
        ["engine", "rate", "index CPU", "cores", "dropped"],
        rows,
        note="paper anchors: 2%@100k, 15%@500k, 23%+9% drop @1.4M, 77% drop @6M",
    )
    saturated = simulate_ingest(influxdb_model(), 6_000_000)
    assert saturated.drop_fraction > 0.7


def test_bench_tsdb_write_path(benchmark):
    """Measured: per-point cost of the TSDB write path (the mechanism)."""
    engine = InfluxLite(memtable_points=5_000)
    counter = [0]

    def write_batch():
        base = counter[0]
        for i in range(1_000):
            engine.write(
                Point.make("lat", {"svc": "a"}, (base + i) * 1000, float(i % 97))
            )
        counter[0] += 1_000

    benchmark(write_batch)


def test_bench_log_append_path(benchmark):
    """Measured: per-record cost of a bare log append, for contrast."""
    log = AppendLog()
    payload = b"x" * 24

    def append_batch():
        for i in range(1_000):
            log.append(1, i, payload)

    benchmark(append_batch)


def test_tsdb_write_costs_more_than_log_append(benchmark, report):
    once(benchmark, lambda: _write_cost_contrast(report))


def _write_cost_contrast(report):
    """The measured mechanism behind Figure 2, summarized."""
    import time

    engine = InfluxLite(memtable_points=10_000)
    log = AppendLog()
    payload = b"x" * 24
    n = 20_000

    start = time.perf_counter()
    for i in range(n):
        engine.write(Point.make("lat", {"svc": "a"}, i * 1000, float(i % 97)))
    tsdb_rate = n / (time.perf_counter() - start)

    start = time.perf_counter()
    for i in range(n):
        log.append(1, i, payload)
    log_rate = n / (time.perf_counter() - start)

    report(
        "Figure 2 mechanism (measured in Python): write-path cost",
        ["path", "records/s", "relative"],
        [
            ["TSDB write (WAL+memtable+tags+flush)", f"{tsdb_rate:,.0f}", "1.0x"],
            ["log append", f"{log_rate:,.0f}", f"{log_rate/tsdb_rate:.1f}x"],
        ],
        note="absolute rates are Python-scale; the ratio is the point",
    )
    assert log_rate > tsdb_rate
