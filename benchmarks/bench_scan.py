"""Read-path smoke benchmark: raw scan vs indexed scan throughput.

``BENCH_ingest.json`` tracks the write path; this is its read-side
counterpart.  It ingests a fixed log of float-valued records (batched,
with the virtual clock advancing between batches so time ranges mean
something), then measures three queries over it:

* **raw scan** — ``Loom.scan`` over the full time range, materializing
  every record.  This exercises the mmap-backed bulk-read tier and the
  columnar ``region_columns`` decode end to end.
* **indexed scan (selective)** — ``Loom.scan_indexed`` with a value
  range matching ~1/16 of records, so most chunk summaries are skipped
  and the vectorized bin/time filter touches only candidate regions.
* **indexed aggregate** — ``Loom.aggregate(..., "count")`` over the full
  range, which should answer from summaries alone.

Reported figures are records/second *returned* (scans) or *covered*
(aggregate), best-of-``rounds`` to strip scheduler noise.  Results are
written to ``BENCH_scan.json`` so read-path gains are tracked alongside
ingest in CI's bench-smoke job.

Run directly (writes ``BENCH_scan.json``)::

    PYTHONPATH=src python benchmarks/bench_scan.py
    PYTHONPATH=src python benchmarks/bench_scan.py --duration 0.5
"""

from __future__ import annotations

import argparse
import json
import struct
import time

_VALUE = struct.Struct("<d")


def _build_payloads(count: int, record_size: int, modulus: int) -> list:
    """``count`` payloads of ``record_size`` bytes whose leading float
    cycles through ``0 .. modulus-1`` (uniform over the index bins)."""
    pad = b"\x00" * (record_size - _VALUE.size)
    return [_VALUE.pack(float(i % modulus)) + pad for i in range(count)]


def run_scan_smoke(
    duration_s: float = 2.5,
    record_count: int = 200_000,
    record_size: int = 64,
    batch_size: int = 512,
    rounds: int = 3,
    out_path: str = "BENCH_scan.json",
) -> dict:
    """Measure raw-scan, selective indexed-scan and summary-only
    aggregate throughput over a freshly ingested log.

    Each query gets ``rounds`` timed windows of ``duration_s / rounds``
    seconds; the reported number is the best window.  Returns (and
    writes) the result dict.
    """
    from repro.core import Loom, LoomConfig, VirtualClock

    modulus = 16
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
        clock=clock,
    )
    loom.define_source(1)
    index_id = loom.define_index(
        1,
        lambda p: _VALUE.unpack_from(p)[0],
        [float(edge) for edge in range(1, modulus)],
    )

    payloads = _build_payloads(batch_size, record_size, modulus)
    pushed = 0
    while pushed < record_count:
        loom.push_many(1, payloads)
        clock.advance(1_000_000)  # 1 ms of virtual time per batch
        pushed += batch_size
    loom.sync()
    t_end = clock.now()

    snapshot = loom.snapshot()
    slice_s = duration_s / rounds

    def best_of(run) -> float:
        """Best records/second over ``rounds`` timed windows of ``run``."""
        best = 0.0
        for _ in range(rounds):
            covered = 0
            start = time.perf_counter()
            deadline = start + slice_s
            while time.perf_counter() < deadline:
                covered += run()
            best = max(best, covered / (time.perf_counter() - start))
        return best

    def raw_scan() -> int:
        result = loom.scan(1, (0, t_end), snapshot=snapshot)
        return len(result.records)

    # Value range [3.0, 4.0) → one of ``modulus`` uniform bins matches.
    def indexed_scan() -> int:
        result = loom.scan_indexed(
            1, index_id, (0, t_end), (3.0, 3.5), snapshot=snapshot
        )
        return len(result.records)

    def aggregate_count() -> int:
        result = loom.aggregate(1, index_id, (0, t_end), "count", snapshot=snapshot)
        return int(result.value or 0)

    raw_rps = best_of(raw_scan)
    selective_rps = best_of(indexed_scan)
    aggregate_rps = best_of(aggregate_count)
    loom.close()

    result = {
        "bench": "scan_smoke",
        "record_count": pushed,
        "record_size_bytes": record_size,
        "batch_size": batch_size,
        "duration_s_per_query": duration_s,
        "rounds": rounds,
        "raw_scan_records_per_s": round(raw_rps),
        "indexed_scan_selectivity": round(1.0 / modulus, 4),
        "indexed_scan_matched_per_s": round(selective_rps),
        "aggregate_count_covered_per_s": round(aggregate_rps),
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    return result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration",
        type=float,
        default=2.5,
        help="total timed seconds per query (split across rounds)",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=200_000,
        help="records to ingest before measuring",
    )
    parser.add_argument("--out", default="BENCH_scan.json")
    cli = parser.parse_args()
    print(
        json.dumps(
            run_scan_smoke(
                duration_s=cli.duration,
                record_count=cli.records,
                out_path=cli.out,
            ),
            indent=2,
        )
    )
