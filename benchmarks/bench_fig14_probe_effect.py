"""Figure 14: probe effect of telemetry collection on the monitored app.

The paper runs RocksDB Phase 3 ingest-only (~8M records/s) against a
5.06M ops/s RocksDB instance and measures the application's slowdown per
collection backend: raw file 4.10%, Loom 4.83%, FishStore-N 6.6%,
FishStore-I (3 PSFs) 9.9%, InfluxDB 14.1% (>7% is considered problematic
in industry).  Probe effect is co-location resource arithmetic, so the
table comes from the calibrated model; the measured micro-benchmarks show
the mechanism — per-event collector cost ordering across backends.
"""

import time

import pytest

from conftest import once
from repro.baselines import FishStore, InfluxLite, Point, RawFileCapture
from repro.baselines.fishstore import source_equals
from repro.core import Loom, LoomConfig, VirtualClock
from repro.simulate import (
    PROBLEMATIC_PROBE_EFFECT,
    compare_backends,
    fishstore_model,
    influxdb_model,
    loom_model,
    rawfile_model,
)
from repro.workloads import fixed_size_records

EVENT_RATE = 8_000_000
BASELINE_OPS = 5_060_000
PAPER = {
    "raw file": "4.10%",
    "Loom": "4.83%",
    "FishStore-N": "6.6%",
    "FishStore-I(3)": "9.9%",
    "InfluxDB-e2e": "14.1%",
}


def test_fig14_probe_table(benchmark, report):
    once(benchmark, lambda: _fig14_table(report))


def _fig14_table(report):
    models = [
        rawfile_model(),
        loom_model(),
        fishstore_model(0),
        fishstore_model(3),
        influxdb_model(e2e=True),
    ]
    outcomes = compare_backends(models, EVENT_RATE, BASELINE_OPS)
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.backend,
                f"{outcome.probe_fraction*100:.2f}%",
                PAPER[outcome.backend],
                f"{outcome.app_throughput/1e6:.2f}M ops/s",
                "yes" if outcome.problematic else "no",
            ]
        )
    report(
        "Figure 14: probe effect on RocksDB (simulated, RocksDB P3 rates)",
        ["backend", "probe effect", "paper", "app throughput", f">{PROBLEMATIC_PROBE_EFFECT*100:.0f}% problematic"],
        rows,
        note="baseline without collection: 5.06M ops/s; Loom is on par with a raw file",
    )
    probes = [o.probe_fraction for o in outcomes]
    assert probes == sorted(probes)
    assert abs(probes[1] - probes[0]) < 0.01  # Loom ~ raw file


def test_measured_collector_cost_ordering(benchmark, report):
    once(benchmark, lambda: _measured_costs(report))


def _measured_costs(report):
    """Measured per-event collector work in this repository's engines.

    The orderings that drive Figure 14 — PSFs make FishStore's write path
    more expensive, the TSDB's write path dwarfs everything — hold in the
    measured implementations too.
    """
    n = 20_000
    payloads = fixed_size_records(n, 24)

    def run(fn):
        start = time.perf_counter()
        fn()
        return n / (time.perf_counter() - start)

    raw = RawFileCapture()
    raw_rate = run(lambda: [raw.write(1, i, p) for i, p in enumerate(payloads)])

    loom = Loom(LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
                clock=VirtualClock())
    loom.define_source(1)
    loom_rate = run(lambda: [loom.push(1, p) for p in payloads])
    loom.close()

    fs0 = FishStore(max_psfs=0)
    fs0_rate = run(lambda: [fs0.append(1, i, p) for i, p in enumerate(payloads)])

    fs3 = FishStore(max_psfs=3)
    for name in ("a", "b", "c"):
        fs3.register_psf(name, source_equals(1))
    fs3_rate = run(lambda: [fs3.append(1, i, p) for i, p in enumerate(payloads)])

    tsdb = InfluxLite(memtable_points=10_000)
    tsdb_rate = run(
        lambda: [
            tsdb.write(Point.make("m", {"s": "a"}, i, float(i % 13)))
            for i in range(n)
        ]
    )

    rows = [
        ["raw file", f"{raw_rate:,.0f}"],
        ["Loom", f"{loom_rate:,.0f}"],
        ["FishStore-N", f"{fs0_rate:,.0f}"],
        ["FishStore-I(3)", f"{fs3_rate:,.0f}"],
        ["InfluxDB-like TSDB", f"{tsdb_rate:,.0f}"],
    ]
    report(
        "Figure 14 mechanism (measured): collector write-path throughput",
        ["backend", "events/s (Python)"],
        rows,
        note="orderings that drive probe effect: PSFs tax FishStore's path; "
        "the TSDB write path is the most expensive",
    )
    assert fs3_rate < fs0_rate  # PSFs cost per event
    assert tsdb_rate < fs0_rate  # TSDB write path heaviest
    assert raw_rate > loom_rate  # raw capture is the floor


def test_bench_loom_push(benchmark):
    loom = Loom(
        LoomConfig(chunk_size=64 * 1024, record_block_size=1 << 22),
        clock=VirtualClock(),
    )
    loom.define_source(1)
    payload = b"x" * 24

    def push_batch():
        for _ in range(1_000):
            loom.push(1, payload)

    benchmark(push_batch)
    loom.close()


def test_bench_rawfile_write(benchmark):
    raw = RawFileCapture()
    payload = b"x" * 24
    counter = [0]

    def write_batch():
        base = counter[0]
        for i in range(1_000):
            raw.write(1, base + i, payload)
        counter[0] += 1_000

    benchmark(write_batch)
