"""Figure 17: exact-match queries — FishStore PSFs vs Loom's single-bin
histogram emulation, as a function of lookback.

The paper's result: FishStore wins for short lookbacks (its PSF chain
identifies exactly the matching records, while Loom scans some irrelevant
data within matching chunks), but FishStore's latency grows with lookback
because it has no time index and must walk its chain through *everything
newer than the window*; Loom's timestamp index keeps its latency flat, so
beyond a crossover (~120 s in the paper) Loom wins.

The bench replays a long stream into both systems with equivalent exact
indexes (Loom: one-bin histogram over the predicate, §6.4; FishStore: a
PSF with the same predicate), sweeps the lookback, and reports latency
and records touched.
"""

import pytest

from conftest import once, time_query
from repro.baselines.fishstore import FishStore
from repro.core import HistogramSpec, Loom, LoomConfig, QueryStats, VirtualClock
from repro.core.clock import seconds
from repro.core.operators import indexed_scan
from repro.workloads import events, latency_stream

WINDOW_S = 20
LOOKBACKS_S = (30, 90, 150, 210)
STREAM_S = 250.0
RATE = 3_000.0
#: The exact predicate both systems index ("latency >= 45 us").  It
#: selects ~12% of the stream — a pread64-like subset (the paper's Fig 17
#: runs on RocksDB Phase 2, whose indexed subset is a few percent of a
#: much larger stream).  Subset density determines the crossover point.
THRESHOLD = 45.0


@pytest.fixture(scope="module")
def systems():
    # Heavy-tailed latencies so the exact predicate (>= 512 us) selects a
    # rare-but-present subset (~0.1% of records).
    stream = latency_stream(RATE, STREAM_S, seed=13, sigma=1.3)

    clock = VirtualClock()
    loom = Loom(
        LoomConfig(chunk_size=4096, record_block_size=1 << 18, timestamp_interval=64),
        clock=clock,
    )
    loom.define_source(events.SRC_SYSCALL)
    # Single-bin emulation of an exact index: one interior bin covering
    # [THRESHOLD, huge); matching records are isolated in that bin.
    index_id = loom.define_index(
        events.SRC_SYSCALL,
        events.latency_value,
        HistogramSpec([THRESHOLD, 1e9]),  # one-bin exact emulation (§6.4)
    )

    fishstore = FishStore(max_psfs=1)
    psf = fishstore.register_psf(
        "hot",
        lambda sid, p: 1 if events.latency_value(p) >= THRESHOLD else None,
    )

    for t, sid, payload in stream:
        clock.set(max(t, clock.now()))
        loom.push(sid, payload)
        fishstore.append(sid, t, payload)
    loom.sync()
    yield loom, index_id, clock, fishstore, psf
    loom.close()


def loom_query(loom, index_id, clock, lookback_s):
    t_end = clock.now() - seconds(lookback_s)
    t_start = t_end - seconds(WINDOW_S)
    snap = loom.snapshot()
    index = loom.record_log.get_index(index_id)
    stats = QueryStats()
    records = list(
        indexed_scan(
            snap, events.SRC_SYSCALL, index, t_start, t_end,
            v_min=THRESHOLD, stats=stats,
        )
    )
    return records, stats.records_scanned


def fishstore_query(fishstore, psf, clock, lookback_s):
    t_end = clock.now() - seconds(lookback_s)
    t_start = t_end - seconds(WINDOW_S)
    before = fishstore.stats.records_scanned
    records = list(fishstore.psf_scan(psf, 1, t_start=t_start, t_end=t_end))
    return records, fishstore.stats.records_scanned - before


def test_fig17_exact_match_table(benchmark, report, systems):
    once(benchmark, lambda: _fig17_table(report, systems))


def _fig17_table(report, systems):
    loom, index_id, clock, fishstore, psf = systems
    rows = []
    loom_lat, fish_lat = [], []
    loom_scanned, fish_scanned = [], []
    for lookback in LOOKBACKS_S:
        l_s = time_query(lambda: loom_query(loom, index_id, clock, lookback))
        f_s = time_query(lambda: fishstore_query(fishstore, psf, clock, lookback))
        l_records, l_n = loom_query(loom, index_id, clock, lookback)
        f_records, f_n = fishstore_query(fishstore, psf, clock, lookback)
        assert {r.timestamp for r in l_records} == {r.timestamp for r in f_records}
        loom_lat.append(l_s)
        fish_lat.append(f_s)
        loom_scanned.append(l_n)
        fish_scanned.append(f_n)
        rows.append(
            [
                f"{lookback}s",
                f"{l_s*1000:.1f}ms",
                f"{f_s*1000:.1f}ms",
                f"{l_n:,}",
                f"{f_n:,}",
            ]
        )
    report(
        f"Figure 17: exact-match queries vs lookback ({WINDOW_S}s window)",
        ["lookback", "Loom (1-bin)", "FishStore PSF", "Loom recs scanned", "FS recs scanned"],
        rows,
        note="paper: FishStore wins short lookbacks; its latency grows with "
        "lookback (no time index) while Loom stays flat; crossover ~120s",
    )
    # Loom's work is flat in lookback; FishStore's grows.
    assert max(loom_scanned) - min(loom_scanned) < max(loom_scanned) * 0.5 + 50
    assert fish_scanned == sorted(fish_scanned)
    assert fish_scanned[-1] > fish_scanned[0] * 2
    # FishStore touches fewer records than Loom at the shortest lookback
    # (exact chains vs chunk scans) and is faster there...
    assert fish_scanned[0] < loom_scanned[0]
    assert fish_lat[0] < loom_lat[0]
    # ...but Loom wins at the longest lookback (the crossover).
    assert loom_lat[-1] < fish_lat[-1]
    assert loom_scanned[-1] < fish_scanned[-1]


def test_bench_loom_exact_match(benchmark, systems):
    loom, index_id, clock, _, _ = systems
    benchmark(loom_query, loom, index_id, clock, 150)


def test_bench_fishstore_exact_match(benchmark, systems):
    _, _, clock, fishstore, psf = systems
    benchmark(fishstore_query, fishstore, psf, clock, 150)
