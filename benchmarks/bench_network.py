"""Network service overhead bench: wire ingest/query vs in-process calls.

Measures, over TCP loopback against a single-shard :class:`LoomServer`:

- batched ingest throughput (records/second) at several batch sizes,
- query round-trip latency (aggregate over the ingested window),
- the same ingest run against an in-process ``MonitoringDaemon`` so the
  report states what the wire + framing + queue hop costs.

Writes ``BENCH_network.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_network.py --duration 1.0
"""

from __future__ import annotations

import argparse
import json
import struct
import time

from repro.daemon import LoomClient, LoomServer, MonitoringDaemon, ServerConfig

RECORD = struct.Struct("<d")
EDGES = [0.0, 25.0, 50.0, 75.0, 100.0]


def _payloads(batch_size: int) -> list:
    return [RECORD.pack(float(i % 100)) for i in range(batch_size)]


def bench_wire_ingest(duration_s: float, batch_size: int) -> dict:
    server = LoomServer(
        port=0,
        config=ServerConfig(shards=1, queue_high_watermark=4096,
                            queue_low_watermark=1024),
    ).start()
    client = LoomClient("127.0.0.1", server.port, deadline_s=30.0,
                        attempt_timeout_s=10.0)
    client.enable_source("bench")
    client.add_index("bench", "val", EDGES)
    payloads = _payloads(batch_size)

    sent = 0
    start = time.perf_counter()
    deadline = start + duration_s
    while time.perf_counter() < deadline:
        client.ingest("bench", payloads)
        sent += batch_size
    elapsed = time.perf_counter() - start
    client.sync("bench")

    # Query round-trip latency over the ingested window.
    t_range = (0, 2**63 - 1)
    latencies = []
    for _ in range(20):
        t0 = time.perf_counter()
        client.aggregate("bench", "val", t_range, "count")
        latencies.append(time.perf_counter() - t0)
    latencies.sort()

    applied = client.scan("bench", t_range).count
    out = {
        "batch_size": batch_size,
        "records_per_s": round(sent / elapsed),
        "records_sent": sent,
        "records_applied": applied,
        "backpressure_hits": client.backpressure_hits,
        "query_rtt_p50_us": round(latencies[len(latencies) // 2] * 1e6, 1),
        "query_rtt_max_us": round(latencies[-1] * 1e6, 1),
    }
    client.close()
    server.stop()
    return out


def bench_inprocess_ingest(duration_s: float, batch_size: int) -> dict:
    daemon = MonitoringDaemon()
    daemon.enable_source("bench")
    payloads = _payloads(batch_size)
    sent = 0
    start = time.perf_counter()
    deadline = start + duration_s
    while time.perf_counter() < deadline:
        daemon.receive_batch("bench", payloads)
        sent += batch_size
    elapsed = time.perf_counter() - start
    daemon.sync()
    return {"batch_size": batch_size, "records_per_s": round(sent / elapsed)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--duration", type=float, default=1.0,
                        help="seconds per ingest mode")
    parser.add_argument("--out", default="BENCH_network.json")
    args = parser.parse_args(argv)

    wire = [bench_wire_ingest(args.duration, n) for n in (16, 256, 2048)]
    local = bench_inprocess_ingest(args.duration, 256)
    wire_256 = next(w for w in wire if w["batch_size"] == 256)

    result = {
        "bench": "network_service",
        "duration_s_per_mode": args.duration,
        "wire_ingest": wire,
        "inprocess_ingest": local,
        "wire_overhead_factor_at_256": round(
            local["records_per_s"] / max(1, wire_256["records_per_s"]), 2
        ),
    }
    for w in wire:
        if w["records_applied"] != w["records_sent"]:
            raise SystemExit(
                f"lost records on the wire: sent {w['records_sent']}, "
                f"applied {w['records_applied']} (batch {w['batch_size']})"
            )
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
