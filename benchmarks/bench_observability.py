"""Observability overhead: batched ingest with loomscope on vs off.

The loomscope registry instruments Loom's hottest path (``push_many``:
two counter increments, one batch-latency histogram observe per batch).
The paper's position is that self-observation must be close to free —
a telemetry engine whose own telemetry costs double-digit percent would
be measuring itself instead of the workload.  This harness quantifies
that: the same batched ingest loop as ``BENCH_ingest.json``, run with
``metrics_enabled=True`` and ``False``, interleaved round-robin so both
modes share the same thermal/JIT/page-cache conditions.  The acceptance
budget is 3% (``within_budget`` in the JSON).

Run directly (writes ``BENCH_observability.json``)::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --duration 0.5
"""

from __future__ import annotations

import argparse
import json
import time


def run_observability_smoke(
    duration_s: float = 2.5,
    record_size: int = 64,
    batch_size: int = 512,
    rounds: int = 3,
    out_path: str = "BENCH_observability.json",
    budget_pct: float = 3.0,
) -> dict:
    """Measure instrumented vs uninstrumented ``push_many`` throughput.

    Each mode gets ``rounds`` runs of ``duration_s / rounds`` seconds,
    interleaved (off, on, off, on, ...); the per-mode throughput is the
    best round, which is the standard way to strip scheduler noise from
    a short benchmark.  Returns (and writes) the result dict.
    """
    from repro.core import Loom, LoomConfig, VirtualClock
    from repro.workloads import fixed_size_records

    payloads = fixed_size_records(batch_size, record_size)
    slice_s = duration_s / rounds

    def measure_once(metrics_enabled: bool) -> float:
        loom = Loom(
            LoomConfig(
                chunk_size=64 * 1024,
                record_block_size=1 << 22,
                metrics_enabled=metrics_enabled,
            ),
            clock=VirtualClock(),
        )
        loom.define_source(1)
        pushed = 0
        push_many = loom.push_many
        start = time.perf_counter()
        deadline = start + slice_s
        while time.perf_counter() < deadline:
            push_many(1, payloads)
            pushed += batch_size
        elapsed = time.perf_counter() - start
        loom.close()
        return pushed / elapsed

    best = {False: 0.0, True: 0.0}
    for _ in range(rounds):
        for enabled in (False, True):
            best[enabled] = max(best[enabled], measure_once(enabled))

    off, on = best[False], best[True]
    overhead_pct = round((off - on) / off * 100.0, 2)
    result = {
        "bench": "observability_smoke",
        "record_size_bytes": record_size,
        "batch_size": batch_size,
        "duration_s_per_mode": duration_s,
        "rounds": rounds,
        "records_per_s_uninstrumented": round(off),
        "records_per_s_instrumented": round(on),
        "overhead_pct": overhead_pct,
        "budget_pct": budget_pct,
        "within_budget": overhead_pct <= budget_pct,
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    return result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=2.5)
    parser.add_argument("--out", default="BENCH_observability.json")
    args = parser.parse_args()
    print(
        json.dumps(
            run_observability_smoke(duration_s=args.duration, out_path=args.out),
            indent=2,
        )
    )
