"""Figure 3: uniform sampling misses the rare events.

The paper's ground truth: six slow Redis requests and six mangled packets
in a 10-second Phase 3 window; uniform ~10% sampling (the thinning needed
for InfluxDB to keep up) captures about one slow request and none of the
mangled packets, destroying the correlation.  This bench reproduces the
counting experiment on the generated workload and benchmarks the sampling
pass itself.
"""

import pytest

from repro.workloads import RedisCaseStudy, events, uniform_sample

SCALE = 1e-3


@pytest.fixture(scope="module")
def phase3():
    return RedisCaseStudy(scale=SCALE, phase_duration_s=10.0).generate_phase(3)


def _needle_counts(records, needles):
    needle_ids = {n.request_op_id for n in needles}
    slow = sum(
        1
        for _, sid, p in records
        if sid == events.SRC_APP and events.latency_op_id(p) in needle_ids
    )
    mangled = sum(
        1
        for _, sid, p in records
        if sid == events.SRC_PACKET
        and events.unpack_packet(p)[1] == events.MANGLED_PORT
    )
    return slow, mangled


def test_fig3_sampling_table(benchmark, report, phase3):
    from conftest import once

    once(benchmark, lambda: _fig3_table(report, phase3))


def _fig3_table(report, phase3):
    truth_slow, truth_mangled = _needle_counts(phase3.records, phase3.needles)
    rows = [
        [
            "ground truth (full capture / Loom)",
            len(phase3.records),
            truth_slow,
            truth_mangled,
            "yes",
        ]
    ]
    total_slow = total_mangled = 0
    trials = 10
    for seed in range(trials):
        kept = uniform_sample(phase3.records, 0.1, seed=seed)
        slow, mangled = _needle_counts(kept, phase3.needles)
        total_slow += slow
        total_mangled += mangled
    rows.append(
        [
            f"10% uniform sample (mean of {trials} seeds)",
            len(kept),
            f"{total_slow/trials:.1f}",
            f"{total_mangled/trials:.1f}",
            "no",
        ]
    )
    report(
        "Figure 3: sampling vs rare events (Redis Phase 3)",
        ["capture", "records", "slow req found /6", "mangled pkts found /6", "correlation possible"],
        rows,
        note="paper: sampling caught 1 of 6 slow requests and 0 of 6 mangled packets",
    )
    assert truth_slow == 6 and truth_mangled == 6
    assert total_slow / trials < 3
    assert total_mangled / trials < 3


def test_bench_uniform_sampling(benchmark, phase3):
    benchmark(uniform_sample, phase3.records, 0.1, 1)
