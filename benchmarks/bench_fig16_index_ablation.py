"""Figure 16: impact of Loom's indexes on query latency (ablation).

The paper runs RocksDB Phase 2, queries high-latency syscalls within a
120-second window, and varies the lookback (how far in the past the
window starts) under four index configurations:

* no indexes          — latency grows linearly with lookback (chain walk
                        from the tail);
* timestamp index only — flat in lookback but high (must scan the whole
                        window's data);
* chunk index only    — must discover the window by scanning summaries
                        from the tail (grows with lookback, small slope);
* both (default)      — low and flat; "these benefits compose".

This bench replays a long high-rate stream, sweeps lookbacks, and times
the same value-range query under each configuration, also recording
records scanned (the scale-free quantity behind the latencies).
"""

import pytest

from conftest import once, time_query
from repro.core import HistogramSpec, Loom, LoomConfig, QueryStats, VirtualClock
from repro.core.clock import seconds
from repro.core.operators import indexed_scan, raw_scan
from repro.workloads import events, latency_stream

WINDOW_S = 30
LOOKBACKS_S = (40, 100, 160, 220)
STREAM_S = 260.0
RATE = 3_000.0
THRESHOLD = 512.0


@pytest.fixture(scope="module")
def ablation_loom():
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(chunk_size=4096, record_block_size=1 << 18, timestamp_interval=64),
        clock=clock,
    )
    loom.define_source(events.SRC_SYSCALL)
    index_id = loom.define_index(
        events.SRC_SYSCALL,
        events.latency_value,
        HistogramSpec([2.0, 8.0, 32.0, 128.0, 512.0]),
    )
    for t, sid, payload in latency_stream(RATE, STREAM_S, seed=12, sigma=1.3):
        clock.set(max(t, clock.now()))
        loom.push(sid, payload)
    loom.sync()
    yield loom, index_id, clock
    loom.close()


def run_config(loom, index_id, clock, lookback_s, use_time, use_chunk, no_index=False):
    t_end = clock.now() - seconds(lookback_s)
    t_start = t_end - seconds(WINDOW_S)
    snap = loom.snapshot()
    index = loom.record_log.get_index(index_id)
    stats = QueryStats()
    if no_index:
        records = [
            r
            for r in raw_scan(
                snap, events.SRC_SYSCALL, t_start, t_end,
                stats=stats, use_time_index=False,
            )
            if events.latency_value(r.payload) >= THRESHOLD
        ]
    else:
        records = list(
            indexed_scan(
                snap, events.SRC_SYSCALL, index, t_start, t_end,
                v_min=THRESHOLD, stats=stats,
                use_time_index=use_time, use_chunk_index=use_chunk,
            )
        )
    return records, stats


CONFIGS = [
    ("no indexes", dict(use_time=False, use_chunk=False, no_index=True)),
    ("timestamp index only", dict(use_time=True, use_chunk=False)),
    ("chunk index only", dict(use_time=False, use_chunk=True)),
    ("both (default)", dict(use_time=True, use_chunk=True)),
]


def test_fig16_ablation_table(benchmark, report, ablation_loom):
    once(benchmark, lambda: _fig16_table(report, ablation_loom))


def _fig16_table(report, ablation_loom):
    loom, index_id, clock = ablation_loom
    rows = []
    latencies = {}
    scanned = {}
    for name, kwargs in CONFIGS:
        per_lookback = []
        per_scanned = []
        for lookback in LOOKBACKS_S:
            latency = time_query(
                lambda: run_config(loom, index_id, clock, lookback, **kwargs)
            )
            _, stats = run_config(loom, index_id, clock, lookback, **kwargs)
            per_lookback.append(latency)
            per_scanned.append(stats.records_scanned)
        latencies[name] = per_lookback
        scanned[name] = per_scanned
        rows.append(
            [name]
            + [f"{l*1000:.1f}ms" for l in per_lookback]
            + [f"{per_scanned[0]:,}/{per_scanned[-1]:,}"]
        )
    report(
        f"Figure 16: index ablation — query latency vs lookback ({WINDOW_S}s window)",
        ["configuration"]
        + [f"{lb}s back" for lb in LOOKBACKS_S]
        + ["records scanned (first/last)"],
        rows,
        note="paper: no-index grows with lookback; time index flattens it; "
        "both indexes are low and flat",
    )
    # All configurations return identical results (checked in tests/);
    # assert the figure's shapes on scanning work:
    no_idx = scanned["no indexes"]
    assert no_idx == sorted(no_idx)  # grows with lookback
    assert no_idx[-1] > no_idx[0] * 2
    time_only = scanned["timestamp index only"]
    assert max(time_only) < no_idx[-1]  # flat-ish, below no-index at depth
    assert max(time_only) - min(time_only) < max(time_only) * 0.25
    both = scanned["both (default)"]
    assert max(both) < max(time_only) / 2  # chunk index composes
    chunk_only = scanned["chunk only"] if "chunk only" in scanned else scanned["chunk index only"]
    assert max(chunk_only) <= max(time_only)
    # Latency of the default config beats no-index everywhere.
    assert all(
        a < b for a, b in zip(latencies["both (default)"], latencies["no indexes"])
    )


def test_bench_default_config_query(benchmark, ablation_loom):
    loom, index_id, clock = ablation_loom
    benchmark(
        run_config, loom, index_id, clock, 160, use_time=True, use_chunk=True
    )


def test_bench_no_index_query(benchmark, ablation_loom):
    loom, index_id, clock = ablation_loom
    benchmark(
        run_config, loom, index_id, clock, 160,
        use_time=False, use_chunk=False, no_index=True,
    )
