"""Cold-tier smoke benchmark: migration throughput and cold scan cost.

``BENCH_scan.json`` tracks the hot read path; this measures what the
tiered-storage API adds on top.  It ingests a fixed log of float-valued
records (batched, virtual clock advancing between batches), scans it hot,
then migrates everything to the compressed archive and scans it cold:

* **compression ratio** — raw record bytes over archive bytes for the
  migrated chunks (delta-of-delta timestamps + columnar transpose +
  zlib).  CI gates on a floor of 4x for this telemetry shape.
* **migration throughput** — records/second and MB/second for one
  forced ``Loom.migrate`` pass over the whole log.
* **hot vs cold scan** — ``Loom.scan`` records/second over the full
  range before and after migration, so the decompress-on-read cost is
  tracked next to the mmap fast path it replaces.
* **summary-only aggregate** — ``Loom.aggregate(..., "count")`` after
  migration; answered from resident summaries, no decompression.

Reported figures are best-of-``rounds`` (migration is a single timed
pass).  Results are written to ``BENCH_archive.json`` for CI's
bench-smoke job.

Run directly (writes ``BENCH_archive.json``)::

    PYTHONPATH=src python benchmarks/bench_archive.py
    PYTHONPATH=src python benchmarks/bench_archive.py --duration 0.5
"""

from __future__ import annotations

import argparse
import json
import struct
import time

_VALUE = struct.Struct("<d")


def _build_payloads(count: int, record_size: int, modulus: int) -> list:
    pad = b"\x00" * (record_size - _VALUE.size)
    return [_VALUE.pack(float(i % modulus)) + pad for i in range(count)]


def run_archive_smoke(
    duration_s: float = 2.0,
    record_count: int = 200_000,
    record_size: int = 64,
    batch_size: int = 512,
    rounds: int = 3,
    out_path: str = "BENCH_archive.json",
) -> dict:
    """Measure compression ratio, migration throughput and the hot→cold
    scan cost delta over a freshly ingested log.

    Each scan gets ``rounds`` timed windows of ``duration_s / rounds``
    seconds; the reported number is the best window.  Returns (and
    writes) the result dict.
    """
    from repro.core import Loom, LoomConfig, TierConfig, VirtualClock

    modulus = 16
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(
            chunk_size=64 * 1024,
            record_block_size=1 << 22,
            tier=TierConfig(auto_migrate=False),
        ),
        clock=clock,
    )
    loom.define_source(1)
    index_id = loom.define_index(
        1,
        lambda p: _VALUE.unpack_from(p)[0],
        [float(edge) for edge in range(1, modulus)],
    )

    payloads = _build_payloads(batch_size, record_size, modulus)
    pushed = 0
    while pushed < record_count:
        loom.push_many(1, payloads)
        clock.advance(1_000_000)  # 1 ms of virtual time per batch
        pushed += batch_size
    loom.sync()
    t_end = clock.now()
    slice_s = duration_s / rounds

    def best_of(run) -> float:
        best = 0.0
        for _ in range(rounds):
            covered = 0
            start = time.perf_counter()
            deadline = start + slice_s
            while time.perf_counter() < deadline:
                covered += run()
            best = max(best, covered / (time.perf_counter() - start))
        return best

    def full_scan() -> int:
        return len(loom.scan(1, (0, t_end)).records)

    def aggregate_count() -> int:
        result = loom.aggregate(1, index_id, (0, t_end), "count")
        return int(result.value or 0)

    hot_rps = best_of(full_scan)

    migrate_start = time.perf_counter()
    report = loom.migrate(force=True)
    migrate_s = time.perf_counter() - migrate_start

    cold_rps = best_of(full_scan)
    aggregate_rps = best_of(aggregate_count)

    footprint = loom.footprint()
    ratio = (
        report.raw_bytes / report.compressed_bytes
        if report.compressed_bytes
        else 0.0
    )
    loom.close()

    result = {
        "bench": "archive_smoke",
        "record_count": pushed,
        "record_size_bytes": record_size,
        "duration_s_per_query": duration_s,
        "rounds": rounds,
        "chunks_migrated": report.chunks_migrated,
        "records_migrated": report.records_migrated,
        "raw_bytes": report.raw_bytes,
        "compressed_bytes": report.compressed_bytes,
        "compression_ratio": round(ratio, 2),
        "migrate_records_per_s": round(
            report.records_migrated / migrate_s if migrate_s else 0.0
        ),
        "migrate_mb_per_s": round(
            report.raw_bytes / migrate_s / 1e6 if migrate_s else 0.0, 1
        ),
        "hot_scan_records_per_s": round(hot_rps),
        "cold_scan_records_per_s": round(cold_rps),
        "cold_over_hot_scan": round(cold_rps / hot_rps if hot_rps else 0.0, 3),
        "aggregate_count_covered_per_s": round(aggregate_rps),
        "archive_log_bytes": footprint["archive_log_bytes"],
    }
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    return result


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="total timed seconds per scan (split across rounds)",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=200_000,
        help="records to ingest before measuring",
    )
    parser.add_argument("--out", default="BENCH_archive.json")
    cli = parser.parse_args()
    print(
        json.dumps(
            run_archive_smoke(
                duration_s=cli.duration,
                record_count=cli.records,
                out_path=cli.out,
            ),
            indent=2,
        )
    )
