"""Benchmark-suite plumbing.

Every file in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md's experiment index).  Benchmarks use
pytest-benchmark for the timed kernels and report the paper-shaped rows
through the ``report`` fixture, which prints all collected tables in the
terminal summary (so ``pytest benchmarks/ --benchmark-only`` output shows
them without ``-s``).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import pytest

from repro.analysis.report import format_table

_TABLES: List[str] = []


@pytest.fixture(scope="session")
def report():
    """Collects paper-figure tables; printed after the run."""

    def add(
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        note: Optional[str] = None,
    ) -> None:
        text = format_table(title, headers, rows, note=note)
        if text not in _TABLES:
            _TABLES.append(text)

    return add


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("REPRODUCED PAPER TABLES AND FIGURES")
    terminalreporter.write_line("=" * 72)
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)


def once(benchmark, fn: Callable[[], object]):
    """Run a table-producing function exactly once under pytest-benchmark.

    Table tests must carry the ``benchmark`` fixture so they still execute
    under ``--benchmark-only`` (the mode the harness documents); a single
    round keeps the expensive sweeps from repeating.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def time_query(fn: Callable[[], object], repeat: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeat`` runs."""
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]
