"""Figure 13: RocksDB-workload aggregation latencies — Loom vs FishStore
vs InfluxDB-idealized.

Queries per phase (paper Figure 10b):

* P1  Application Max Latency and Application Tail Latency (99.99th
  percentile) over the full request stream.
* P2  pread64 Max Latency and pread64 Tail Latency — aggregation over the
  ~3% subset of the data that is pread64 syscalls.
* P3  Page Cache Count — count of ``mm_filemap_add_to_page_cache`` events
  (~0.5% of the data); the paper notes all systems benefit from their
  indexes here.

Paper shapes to reproduce: Loom serves the max/tail queries largely from
chunk summaries (0.5-3.2 s native; 8-17x faster than FishStore, 7-160x
than InfluxDB-idealized); FishStore must scan; the tag/PSF/summary
indexes make everyone fast on the narrow Phase 3 count.
"""

import pytest

from conftest import once, time_query
from harness import load_rocksdb, tsdb_percentile_rows, tsdb_select_rows
from repro.analysis import nearest_rank_percentile, subset_percentile
from repro.core.operators import QueryStats, bin_histogram
from repro.workloads import events


@pytest.fixture(scope="module")
def rocks():
    return load_rocksdb()


# ----------------------------------------------------------------------
# P1: application max / tail latency
# ----------------------------------------------------------------------
def loom_app_max(loaded, t_range, stats=None):
    result = loaded.daemon.aggregate("app", "latency", t_range, "max")
    if stats is not None:
        stats.merge(result.stats)
    return result.value


def fishstore_app_max(loaded, t_range):
    best = 0.0
    for r in loaded.fishstore.psf_scan(
        loaded.psf["app"], 1, t_start=t_range[0], t_end=t_range[1]
    ):
        value = events.latency_value(r.payload)
        if value > best:
            best = value
    return best


def tsdb_app_max(loaded, t_range):
    rows = tsdb_select_rows(loaded.tsdb, "app", None, t_range[0], t_range[1])
    return max(v for _, v in rows)


def loom_app_tail(loaded, t_range, stats=None):
    result = loaded.daemon.aggregate(
        "app", "latency", t_range, "percentile", percentile=99.99
    )
    if stats is not None:
        stats.merge(result.stats)
    return result.value


def fishstore_app_tail(loaded, t_range):
    values = [
        events.latency_value(r.payload)
        for r in loaded.fishstore.psf_scan(
            loaded.psf["app"], 1, t_start=t_range[0], t_end=t_range[1]
        )
    ]
    return nearest_rank_percentile(values, 99.99)


def tsdb_app_tail(loaded, t_range):
    rows = tsdb_select_rows(loaded.tsdb, "app", None, t_range[0], t_range[1])
    return tsdb_percentile_rows(rows, 99.99)


# ----------------------------------------------------------------------
# P2: pread64 max / tail latency (~3% subset)
# ----------------------------------------------------------------------
def loom_pread_max(loaded, t_range, stats=None):
    # The sentinel (-1) for non-pread records never wins a max.
    result = loaded.daemon.aggregate("syscall", "pread-latency", t_range, "max")
    if stats is not None:
        stats.merge(result.stats)
    return result.value


def fishstore_pread_max(loaded, t_range):
    best = 0.0
    for r in loaded.fishstore.psf_scan(
        loaded.psf["pread64"], 1, t_start=t_range[0], t_end=t_range[1]
    ):
        value = events.latency_value(r.payload)
        if value > best:
            best = value
    return best


def tsdb_pread_max(loaded, t_range):
    rows = tsdb_select_rows(
        loaded.tsdb, "syscall", {"kind": "pread64"}, t_range[0], t_range[1]
    )
    return max(v for _, v in rows)


def loom_pread_tail(loaded, t_range, stats=None):
    return subset_percentile(
        loaded.loom,
        events.SRC_SYSCALL,
        loaded.daemon.index_id("syscall", "pread-latency"),
        t_range,
        99.99,
        stats=stats,
    )


def fishstore_pread_tail(loaded, t_range):
    values = [
        events.latency_value(r.payload)
        for r in loaded.fishstore.psf_scan(
            loaded.psf["pread64"], 1, t_start=t_range[0], t_end=t_range[1]
        )
    ]
    return nearest_rank_percentile(values, 99.99)


def tsdb_pread_tail(loaded, t_range):
    rows = tsdb_select_rows(
        loaded.tsdb, "syscall", {"kind": "pread64"}, t_range[0], t_range[1]
    )
    return tsdb_percentile_rows(rows, 99.99)


# ----------------------------------------------------------------------
# P3: page cache add-event count (~0.5% subset)
# ----------------------------------------------------------------------
def loom_pagecache_count(loaded, t_range, stats=None):
    """Answered from counts stored in chunk summaries (paper: 'Loom uses
    counts stored in chunk summaries to answer the query')."""
    loom = loaded.loom
    snap = loom.snapshot()
    index = loom.record_log.get_index(loaded.daemon.index_id("pagecache", "kind"))
    counts = bin_histogram(
        snap, events.SRC_PAGECACHE, index, t_range[0], t_range[1], stats=stats
    )
    # Kind 1 occupies bin 1 exactly (edges at 1, 2, 3, 4).
    return counts.get(1, 0)


def fishstore_pagecache_count(loaded, t_range):
    return sum(
        1
        for _ in loaded.fishstore.psf_scan(
            loaded.psf["pagecache-add"], 1, t_start=t_range[0], t_end=t_range[1]
        )
    )


def tsdb_pagecache_count(loaded, t_range):
    rows = tsdb_select_rows(
        loaded.tsdb, "pagecache", {"event": "1"}, t_range[0], t_range[1]
    )
    return len(rows)


QUERIES = [
    ("P1", "Application Max Latency", 1, loom_app_max, fishstore_app_max, tsdb_app_max),
    ("P1", "Application Tail Latency", 1, loom_app_tail, fishstore_app_tail, tsdb_app_tail),
    ("P2", "pread64 Max Latency", 2, loom_pread_max, fishstore_pread_max, tsdb_pread_max),
    ("P2", "pread64 Tail Latency", 2, loom_pread_tail, fishstore_pread_tail, tsdb_pread_tail),
    ("P3", "Page Cache Count", 3, loom_pagecache_count, fishstore_pagecache_count, tsdb_pagecache_count),
]


def test_fig13_query_latency_table(benchmark, report, rocks):
    once(benchmark, lambda: _fig13_table(report, rocks))


def _fig13_table(report, rocks):
    rows = []
    loom_wins = 0
    for phase_label, name, phase, loom_fn, fish_fn, tsdb_fn in QUERIES:
        t_range = rocks.phase_range(phase)
        # Per-query decode accounting lives in QueryStats (the record log
        # keeps no read-side counters; see repro.core.operators).
        loom_stats = QueryStats()
        loom_s = time_query(lambda: loom_fn(rocks, t_range, stats=loom_stats))
        loom_n = loom_stats.records_decoded // 3  # 3 timed repeats
        before = rocks.fishstore.stats.records_scanned
        fish_s = time_query(lambda: fish_fn(rocks, t_range))
        fish_n = (rocks.fishstore.stats.records_scanned - before) // 3
        before = rocks.tsdb.stats.points_scanned
        tsdb_s = time_query(lambda: tsdb_fn(rocks, t_range))
        tsdb_n = (rocks.tsdb.stats.points_scanned - before) // 3
        if loom_s <= fish_s:
            loom_wins += 1
        rows.append(
            [
                phase_label,
                name,
                f"{loom_s*1000:.1f}ms",
                f"{fish_s*1000:.1f}ms",
                f"{tsdb_s*1000:.1f}ms",
                f"{loom_n:,}",
                f"{fish_n:,}",
                f"{tsdb_n:,}",
            ]
        )
    report(
        "Figure 13: RocksDB workload aggregate query latencies (measured, scaled workload)",
        ["phase", "query", "Loom", "FishStore", "InfluxDB-ideal",
         "Loom recs", "FS recs", "Influx recs"],
        rows,
        note="paper: Loom 8-17x faster than FishStore and 7-160x than "
        "InfluxDB-idealized on P1/P2; all systems fast on P3",
    )
    assert loom_wins >= 4


def test_aggregates_agree_across_systems(benchmark, rocks):
    once(benchmark, lambda: _check_agreement(rocks))


def _check_agreement(rocks):
    """All three systems compute identical answers."""
    p1 = rocks.phase_range(1)
    truth = rocks.phases[0].truth
    assert loom_app_max(rocks, p1) == pytest.approx(truth["app_max_us"])
    assert fishstore_app_max(rocks, p1) == pytest.approx(truth["app_max_us"])
    assert tsdb_app_max(rocks, p1) == pytest.approx(truth["app_max_us"])
    assert loom_app_tail(rocks, p1) == pytest.approx(truth["app_p9999_us"])
    assert fishstore_app_tail(rocks, p1) == pytest.approx(truth["app_p9999_us"])
    assert tsdb_app_tail(rocks, p1) == pytest.approx(truth["app_p9999_us"])

    p2 = rocks.phase_range(2)
    truth2 = rocks.phases[1].truth
    assert loom_pread_max(rocks, p2) == pytest.approx(truth2["pread_max_us"])
    assert fishstore_pread_max(rocks, p2) == pytest.approx(truth2["pread_max_us"])
    assert loom_pread_tail(rocks, p2) == pytest.approx(truth2["pread_p9999_us"])

    p3 = rocks.phase_range(3)
    truth3 = rocks.phases[2].truth
    assert loom_pagecache_count(rocks, p3) == int(truth3["pagecache_add_count"])
    assert fishstore_pagecache_count(rocks, p3) == int(truth3["pagecache_add_count"])
    assert tsdb_pagecache_count(rocks, p3) == int(truth3["pagecache_add_count"])


def test_bench_loom_app_tail(benchmark, rocks):
    benchmark(loom_app_tail, rocks, rocks.phase_range(1))


def test_bench_loom_pread_tail(benchmark, rocks):
    benchmark(loom_pread_tail, rocks, rocks.phase_range(2))


def test_bench_loom_pagecache_count(benchmark, rocks):
    benchmark(loom_pagecache_count, rocks, rocks.phase_range(3))
