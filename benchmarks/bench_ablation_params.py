"""Design-parameter ablations beyond the paper's figures.

DESIGN.md calls out three tunables whose values embody Loom's central
trade-off (index little enough to ingest fast, enough to query fast):

* **chunk size** — the sparse-indexing granularity.  Smaller chunks mean
  more summaries (more write-path work, larger chunk index) but finer
  skipping (fewer irrelevant records scanned per query).  The paper picks
  64 KiB; this sweep shows the U-shape around any such choice.
* **timestamp interval** — RECORD entries per source.  Denser entries
  seek closer to a time-range's edge at higher write cost.
* **publish interval** — how often the watermark advances.  Batching
  publication trades recency (records invisible until published) for
  fewer publication steps.

Each sweep reports both sides of the trade-off so the chosen defaults can
be judged, and asserts the directional claims.
"""

import time

import pytest

from conftest import once
from repro.core import HistogramSpec, Loom, LoomConfig, QueryStats, VirtualClock
from repro.core.clock import seconds
from repro.core.operators import indexed_scan, raw_scan
from repro.workloads import events, latency_stream

STREAM = None  # lazily generated, shared across sweeps


def get_stream():
    global STREAM
    if STREAM is None:
        STREAM = latency_stream(4_000, 30.0, sigma=1.3, seed=20)
    return STREAM


def build(chunk_size=8192, ts_interval=64, publish_interval=1):
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(
            chunk_size=chunk_size,
            record_block_size=1 << 18,
            timestamp_interval=ts_interval,
            publish_interval=publish_interval,
        ),
        clock=clock,
    )
    loom.define_source(events.SRC_SYSCALL)
    index_id = loom.define_index(
        events.SRC_SYSCALL,
        events.latency_value,
        HistogramSpec([2.0, 8.0, 32.0, 128.0, 512.0]),
    )
    start = time.perf_counter()
    for t, sid, payload in get_stream():
        clock.set(max(t, clock.now()))
        loom.push(sid, payload)
    ingest_s = time.perf_counter() - start
    loom.sync()
    return loom, index_id, clock, ingest_s


def tail_query_stats(loom, index_id, clock):
    snap = loom.snapshot()
    index = loom.record_log.get_index(index_id)
    stats = QueryStats()
    t_end = clock.now() - seconds(5)
    list(
        indexed_scan(
            snap, events.SRC_SYSCALL, index, t_end - seconds(15), t_end,
            v_min=512.0, stats=stats,
        )
    )
    return stats


def test_chunk_size_ablation(benchmark, report):
    once(benchmark, lambda: _chunk_size_sweep(report))


def _chunk_size_sweep(report):
    rows = []
    scanned = {}
    summaries = {}
    for chunk_size in (1024, 4096, 16_384, 65_536):
        loom, index_id, clock, ingest_s = build(chunk_size=chunk_size)
        stats = tail_query_stats(loom, index_id, clock)
        fp = loom.footprint()
        scanned[chunk_size] = stats.records_scanned
        summaries[chunk_size] = fp["finalized_chunks"]
        rows.append(
            [
                f"{chunk_size // 1024} KiB",
                fp["finalized_chunks"],
                f"{fp['chunk_index_bytes']:,}",
                f"{len(get_stream()) / ingest_s:,.0f}",
                f"{stats.records_scanned:,}",
                stats.chunks_skipped,
            ]
        )
        loom.close()
    report(
        "Ablation: chunk size (sparse-indexing granularity)",
        ["chunk size", "summaries", "index bytes", "ingest rec/s",
         "records scanned (tail query)", "chunks skipped"],
        rows,
        note="smaller chunks -> bigger index, finer skipping; the paper "
        "picks 64 KiB for native scale",
    )
    # Finer chunks must scan fewer records per selective query...
    assert scanned[1024] < scanned[65_536]
    # ...at the cost of many more summaries to maintain.
    assert summaries[1024] > 10 * summaries[65_536]


def test_timestamp_interval_ablation(benchmark, report):
    once(benchmark, lambda: _ts_interval_sweep(report))


def _ts_interval_sweep(report):
    rows = []
    overshoot = {}
    entries = {}
    for interval in (8, 64, 512):
        loom, index_id, clock, _ = build(ts_interval=interval)
        fp = loom.footprint()
        # Measure seek precision: raw_scan work for a 1-second window far
        # in the past; coarser entries overshoot further past the window.
        snap = loom.snapshot()
        stats = QueryStats()
        t_end = clock.now() - seconds(20)
        matched = sum(
            1
            for _ in raw_scan(
                snap, events.SRC_SYSCALL, t_end - seconds(1), t_end, stats=stats
            )
        )
        overshoot[interval] = stats.records_scanned - matched
        entries[interval] = fp["timestamp_entries"]
        rows.append(
            [
                interval,
                fp["timestamp_entries"],
                f"{fp['timestamp_index_bytes']:,}",
                f"{stats.records_scanned:,}",
                matched,
            ]
        )
        loom.close()
    report(
        "Ablation: timestamp-index interval (RECORD entries per source)",
        ["interval", "entries", "index bytes", "records scanned (1s window)",
         "records matched"],
        rows,
        note="denser entries seek closer to the window edge at higher "
        "index-maintenance cost",
    )
    assert entries[8] > entries[512]
    assert overshoot[8] <= overshoot[512]


def test_publish_interval_ablation(benchmark, report):
    once(benchmark, lambda: _publish_interval_sweep(report))


def _publish_interval_sweep(report):
    rows = []
    for publish_interval in (1, 64, 1024):
        clock = VirtualClock()
        loom = Loom(
            LoomConfig(
                chunk_size=8192,
                record_block_size=1 << 18,
                publish_interval=publish_interval,
            ),
            clock=clock,
        )
        loom.define_source(1)
        start = time.perf_counter()
        payload = events.pack_latency(0, 1.0, 1)
        for i in range(20_000):
            loom.push(1, payload)
        ingest_s = time.perf_counter() - start
        # Recency: how many pushed records are visible *before* a sync?
        visible = len(loom.scan(1, (0, 2**63 - 1)).records or [])
        rows.append(
            [
                publish_interval,
                f"{20_000 / ingest_s:,.0f}",
                f"{visible:,} / 20,000",
            ]
        )
        loom.close()
    report(
        "Ablation: publish interval (watermark batching)",
        ["publish every N records", "ingest rec/s", "visible before sync"],
        rows,
        note="batching publication trades recency for fewer publication "
        "steps; sync() always forces full visibility",
    )
