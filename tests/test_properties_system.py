"""System-level property tests: recovery faithfulness and snapshot
isolation under randomized operation interleavings."""


from hypothesis import given, settings, strategies as st

from repro.core import HistogramSpec, Loom, LoomConfig, VirtualClock
from repro.core.recovery import recover, scan_persisted_records
from repro.core.storage import MemoryStorage

from conftest import payload_value, value_payload

SETTINGS = settings(max_examples=25, deadline=None)

OPS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),  # source id
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),  # value
    ),
    min_size=1,
    max_size=150,
)


class TestRecoveryRoundtrip:
    @SETTINGS
    @given(ops=OPS, chunk_size=st.integers(min_value=64, max_value=1024))
    def test_recovered_state_matches_ingested(self, ops, chunk_size):
        """After a clean close, recovery from the persisted logs must
        reproduce exactly what was pushed: counts, order, payloads."""
        record_storage = MemoryStorage()
        clock = VirtualClock()
        loom = Loom(
            LoomConfig(chunk_size=chunk_size, record_block_size=512),
            clock=clock,
        )
        # Swap the record log's backend so we can inspect it post-close.
        loom.record_log.log._storage = record_storage
        for sid in (1, 2, 3):
            loom.define_source(sid)
        for sid, value in ops:
            loom.push(sid, value_payload(value))
            clock.advance(17)
        loom.close()

        state = recover(record_storage)
        assert state.total_records == len(ops)
        per_source = {}
        for sid, _ in ops:
            per_source[sid] = per_source.get(sid, 0) + 1
        for sid, count in per_source.items():
            assert state.sources[sid].record_count == count
        recovered = [
            (r.source_id, payload_value(r.payload))
            for r in scan_persisted_records(record_storage)
        ]
        assert recovered == [(sid, v) for sid, v in ops]

    @SETTINGS
    @given(ops=OPS)
    def test_crash_recovery_is_a_prefix(self, ops):
        """Without close(), whatever is recoverable must be a strict
        prefix of what was ingested — never reordered, never invented."""
        record_storage = MemoryStorage()
        clock = VirtualClock()
        loom = Loom(
            LoomConfig(chunk_size=128, record_block_size=256), clock=clock
        )
        loom.record_log.log._storage = record_storage
        for sid in (1, 2, 3):
            loom.define_source(sid)
        for sid, value in ops:
            loom.push(sid, value_payload(value))
            clock.advance(13)
        # No close: the staged blocks are "lost".
        recovered = [
            (r.source_id, payload_value(r.payload))
            for r in scan_persisted_records(record_storage)
        ]
        assert recovered == [(sid, v) for sid, v in ops][: len(recovered)]


class TestSnapshotIsolationProperty:
    @SETTINGS
    @given(
        batches=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                min_size=1,
                max_size=30,
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_snapshots_pin_prefix_counts(self, batches):
        """Take a snapshot between every batch of pushes; each snapshot
        must forever answer with exactly the records pushed before it."""
        clock = VirtualClock()
        loom = Loom(
            LoomConfig(chunk_size=256, record_block_size=512), clock=clock
        )
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([100.0]))
        snapshots = []
        prefix_counts = []
        total = 0
        for batch in batches:
            for value in batch:
                loom.push(1, value_payload(value))
                clock.advance(11)
            loom.sync()
            total += len(batch)
            snapshots.append(loom.snapshot())
            prefix_counts.append(total)
        t_range = (0, 2**62)
        for snap, expected in zip(snapshots, prefix_counts):
            result = loom.indexed_aggregate(
                1, index_id, t_range, "count", snapshot=snap
            )
            assert int(result.value or 0) == expected
        loom.close()
