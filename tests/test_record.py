"""Tests for record framing (header layout, back-pointer encoding)."""

import pytest

from repro.core.hybridlog import NULL_ADDRESS
from repro.core.record import (
    HEADER_SIZE,
    Record,
    decode_header,
    encode_header,
    encode_record,
    record_size,
)


class TestEncoding:
    def test_header_size_is_24(self):
        """The paper's 48-byte latency records are 24 B header + 24 B payload."""
        assert HEADER_SIZE == 24

    def test_roundtrip(self):
        framed = encode_record(7, 123_456, 42, b"payload")
        source_id, timestamp, prev_addr, length = decode_header(framed)
        assert (source_id, timestamp, prev_addr, length) == (7, 123_456, 42, 7)
        assert framed[HEADER_SIZE:] == b"payload"

    def test_null_back_pointer(self):
        framed = encode_record(1, 0, NULL_ADDRESS, b"")
        _, _, prev_addr, length = decode_header(framed)
        assert prev_addr == NULL_ADDRESS
        assert length == 0

    def test_encode_header_matches_encode_record(self):
        assert (
            encode_header(3, 9, 1, 4) == encode_record(3, 9, 1, b"abcd")[:HEADER_SIZE]
        )

    def test_record_size_helper(self):
        assert record_size(24) == 48
        assert record_size(0) == HEADER_SIZE


class TestRecordObject:
    def test_size_and_has_prev(self):
        record = Record(
            source_id=1, timestamp=5, prev_addr=NULL_ADDRESS, payload=b"abc", address=0
        )
        assert record.size == HEADER_SIZE + 3
        assert not record.has_prev
        linked = Record(
            source_id=1, timestamp=6, prev_addr=0, payload=b"", address=27
        )
        assert linked.has_prev
