"""Tests for record framing (header layout, back-pointer encoding)."""


from repro.core.hybridlog import NULL_ADDRESS
from repro.core.record import (
    BODY_SIZE,
    HEADER_SIZE,
    Record,
    decode_header,
    decode_header_crc,
    encode_header,
    encode_record,
    record_crc,
    record_size,
    verify_record_bytes,
)


class TestEncoding:
    def test_header_size_is_28(self):
        """24-byte body (the paper's header) plus the 4-byte CRC extension."""
        assert BODY_SIZE == 24
        assert HEADER_SIZE == 28

    def test_roundtrip(self):
        framed = encode_record(7, 123_456, 42, b"payload")
        source_id, timestamp, prev_addr, length = decode_header(framed)
        assert (source_id, timestamp, prev_addr, length) == (7, 123_456, 42, 7)
        assert framed[HEADER_SIZE:] == b"payload"

    def test_null_back_pointer(self):
        framed = encode_record(1, 0, NULL_ADDRESS, b"")
        _, _, prev_addr, length = decode_header(framed)
        assert prev_addr == NULL_ADDRESS
        assert length == 0

    def test_encode_header_matches_encode_record(self):
        assert (
            encode_header(3, 9, 1, b"abcd")
            == encode_record(3, 9, 1, b"abcd")[:HEADER_SIZE]
        )

    def test_record_size_helper(self):
        assert record_size(24) == 24 + HEADER_SIZE
        assert record_size(0) == HEADER_SIZE

    def test_crc_covers_header_body_and_payload(self):
        framed = bytearray(encode_record(7, 123, 42, b"payload"))
        assert verify_record_bytes(framed, 0, 7)
        assert decode_header_crc(framed) == record_crc(framed[:BODY_SIZE], b"payload")
        framed[HEADER_SIZE] ^= 0x01  # flip one payload bit
        assert not verify_record_bytes(framed, 0, 7)
        framed[HEADER_SIZE] ^= 0x01
        framed[4] ^= 0x01  # flip one timestamp bit
        assert not verify_record_bytes(framed, 0, 7)


class TestRecordObject:
    def test_size_and_has_prev(self):
        record = Record(
            source_id=1, timestamp=5, prev_addr=NULL_ADDRESS, payload=b"abc", address=0
        )
        assert record.size == HEADER_SIZE + 3
        assert not record.has_prev
        linked = Record(
            source_id=1, timestamp=6, prev_addr=0, payload=b"", address=27
        )
        assert linked.has_prev
