"""Tests for the InfluxDB-style TSDB baseline: WAL, memtable, segments,
tag index, compaction, and query semantics."""

import numpy as np
import pytest

from repro.baselines.tsdb import (
    InfluxLite,
    MemTable,
    Point,
    Segment,
    TagIndex,
    WriteAheadLog,
    merge_segments,
)


class TestPoint:
    def test_series_key_is_canonical(self):
        a = Point.make("lat", {"b": "2", "a": "1"}, 0, 1.0)
        b = Point.make("lat", {"a": "1", "b": "2"}, 0, 1.0)
        assert a.series_key == b.series_key == "lat,a=1,b=2"

    def test_tagless_series_key(self):
        assert Point.make("cpu", {}, 0, 1.0).series_key == "cpu"


class TestWal:
    def test_replay_after_writes(self):
        wal = WriteAheadLog()
        wal.append("s1", 100, 1.5)
        wal.append("s2", 200, 2.5)
        assert list(wal.replay()) == [("s1", 100, 1.5), ("s2", 200, 2.5)]

    def test_checkpoint_truncates_replay(self):
        wal = WriteAheadLog()
        wal.append("s1", 100, 1.5)
        wal.checkpoint()
        wal.append("s1", 200, 2.5)
        assert list(wal.replay()) == [("s1", 200, 2.5)]


class TestMemTable:
    def test_insert_and_query(self):
        table = MemTable(max_points=100)
        table.insert("s1", 100, 1.0)
        table.insert("s1", 50, 2.0)
        assert table.points_for("s1", 0, 99) == [(50, 2.0)]
        assert table.points_for("s2", 0, 1000) == []

    def test_is_full_threshold(self):
        table = MemTable(max_points=3)
        for i in range(3):
            assert not table.is_full
            table.insert("s", i, 0.0)
        assert table.is_full

    def test_freeze_sorts_and_empties(self):
        table = MemTable(max_points=100)
        for t in (300, 100, 200):
            table.insert("s", t, float(t))
        frozen = table.freeze()
        assert frozen["s"] == [(100, 100.0), (200, 200.0), (300, 300.0)]
        assert table.point_count == 0
        assert table.points_for("s", 0, 1000) == []


class TestSegments:
    def _segment(self, times):
        return Segment.from_buffers({"s": [(t, float(t)) for t in sorted(times)]})

    def test_time_bounds_and_overlap(self):
        seg = self._segment([100, 200, 300])
        assert (seg.t_min, seg.t_max) == (100, 300)
        assert seg.overlaps(250, 400)
        assert not seg.overlaps(301, 400)

    def test_series_points_slice(self):
        seg = self._segment(range(0, 100, 10))
        ts, vs = seg.series_points("s", 25, 65)
        assert list(ts) == [30, 40, 50, 60]

    def test_merge_preserves_order_and_count(self):
        a = self._segment([10, 30, 50])
        b = self._segment([20, 40, 60])
        merged = merge_segments([a, b], level=1)
        ts, _ = merged.series_points("s", 0, 100)
        assert list(ts) == [10, 20, 30, 40, 50, 60]
        assert merged.level == 1


class TestTagIndex:
    def test_lookup_by_tag_conjunction(self):
        index = TagIndex()
        index.observe("lat", (("svc", "a"), ("host", "1")), "k1")
        index.observe("lat", (("svc", "a"), ("host", "2")), "k2")
        index.observe("lat", (("svc", "b"), ("host", "1")), "k3")
        assert index.lookup("lat", {"svc": "a"}) == {"k1", "k2"}
        assert index.lookup("lat", {"svc": "a", "host": "2"}) == {"k2"}
        assert index.lookup("lat") == {"k1", "k2", "k3"}
        assert index.lookup("lat", {"svc": "z"}) == set()
        assert index.lookup("nope") == set()

    def test_series_indexed_once(self):
        index = TagIndex()
        assert index.observe("m", (("a", "1"),), "k") is True
        assert index.observe("m", (("a", "1"),), "k") is False
        assert index.series_count == 1


class TestEngine:
    @pytest.fixture
    def engine(self):
        engine = InfluxLite(memtable_points=500, compaction_fanout=3)
        rng = np.random.default_rng(5)
        self.values = {"a": [], "b": []}
        for i in range(4000):
            svc = "a" if i % 4 else "b"
            value = float(rng.random() * 100)
            self.values[svc].append(value)
            engine.write(Point.make("lat", {"svc": svc}, i * 1000, value))
        return engine

    def test_no_points_lost_through_flush_and_compaction(self, engine):
        ts, vs = engine.select("lat", None, 0, 10**12)
        assert len(ts) == 4000

    def test_tag_filtered_select(self, engine):
        ts, vs = engine.select("lat", {"svc": "b"}, 0, 10**12)
        assert len(ts) == 1000
        assert sorted(vs) == sorted(self.values["b"])

    def test_time_windowed_select(self, engine):
        ts, _ = engine.select("lat", None, 1_000_000, 1_999_999)
        # Records at i*1000 ns for i in [1000, 1999].
        assert len(ts) == 1000

    def test_aggregates_match_numpy(self, engine):
        all_values = self.values["a"] + self.values["b"]
        assert engine.aggregate("lat", None, 0, 10**12, "count") == 4000
        assert engine.aggregate("lat", None, 0, 10**12, "max") == pytest.approx(
            max(all_values)
        )
        assert engine.aggregate(
            "lat", None, 0, 10**12, "percentile", 99.0
        ) == pytest.approx(
            float(np.percentile(all_values, 99.0, method="inverted_cdf"))
        )

    def test_aggregate_empty_selection(self, engine):
        assert engine.aggregate("lat", {"svc": "zzz"}, 0, 10**12, "max") is None

    def test_percentile_requires_argument(self, engine):
        with pytest.raises(ValueError):
            engine.aggregate("lat", None, 0, 10**12, "percentile")

    def test_unknown_method(self, engine):
        with pytest.raises(ValueError):
            engine.aggregate("lat", None, 0, 10**12, "mode")

    def test_compaction_happened(self, engine):
        """With a fanout of 3 and 8 flushes, compaction must have merged —
        the write-amplification work behind Figure 2's index CPU."""
        assert engine.stats.memtable_flushes >= 8
        assert engine.segments.stats.compactions > 0
        assert engine.segments.stats.points_merged > 0

    def test_unflushed_memtable_data_is_queryable(self):
        engine = InfluxLite(memtable_points=10_000)
        engine.write(Point.make("lat", {"svc": "a"}, 123, 9.0))
        ts, vs = engine.select("lat", {"svc": "a"}, 0, 1000)
        assert list(ts) == [123]
        assert list(vs) == [9.0]
