"""Tests for the clock abstractions (paper section 5.2 internal timestamps)."""

import pytest

from repro.core.clock import (
    MonotonicClock,
    VirtualClock,
    micros,
    millis,
    seconds,
)


class TestMonotonicClock:
    def test_now_is_positive(self):
        assert MonotonicClock().now() > 0

    def test_now_is_monotonic(self):
        clock = MonotonicClock()
        samples = [clock.now() for _ in range(100)]
        assert all(a <= b for a, b in zip(samples, samples[1:]))


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0

    def test_starts_at_given_time(self):
        assert VirtualClock(start_ns=5_000).now() == 5_000

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-1)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(100) == 100
        assert clock.now() == 100
        assert clock.advance(0) == 100

    def test_advance_backwards_rejected(self):
        clock = VirtualClock(start_ns=50)
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_set_absolute(self):
        clock = VirtualClock()
        clock.set(1_000)
        assert clock.now() == 1_000
        clock.set(1_000)  # same time is allowed
        assert clock.now() == 1_000

    def test_set_backwards_rejected(self):
        clock = VirtualClock(start_ns=500)
        with pytest.raises(ValueError):
            clock.set(499)


class TestUnitHelpers:
    def test_seconds(self):
        assert seconds(1) == 1_000_000_000
        assert seconds(0.5) == 500_000_000

    def test_millis(self):
        assert millis(2) == 2_000_000

    def test_micros(self):
        assert micros(3) == 3_000
