"""Tests for the key-value store baselines (LMDB-style B+-tree and
RocksDB-style LSM tree)."""

import random

import pytest

from repro.baselines.kvstore import BPlusTree, LsmKv


class TestBPlusTreeAppendMode:
    def test_append_and_get(self):
        tree = BPlusTree(order=8)
        for i in range(1000):
            tree.append(i, str(i).encode())
        assert tree.get(0) == b"0"
        assert tree.get(999) == b"999"
        assert tree.get(1000) is None
        assert len(tree) == 1000

    def test_append_requires_increasing_keys(self):
        tree = BPlusTree(order=8)
        tree.append(10, b"a")
        with pytest.raises(ValueError):
            tree.append(10, b"b")
        with pytest.raises(ValueError):
            tree.append(5, b"c")

    def test_range_scan_via_leaf_links(self):
        tree = BPlusTree(order=8)
        for i in range(0, 1000, 2):
            tree.append(i, str(i).encode())
        got = [k for k, _ in tree.range(100, 120)]
        assert got == list(range(100, 121, 2))

    def test_range_outside_data(self):
        tree = BPlusTree(order=8)
        for i in range(10):
            tree.append(i, b"v")
        assert list(tree.range(100, 200)) == []

    def test_tree_grows_in_height(self):
        tree = BPlusTree(order=4)
        for i in range(500):
            tree.append(i, b"v")
        assert tree.height >= 3
        assert tree.page_splits > 0

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)


class TestBPlusTreeGeneralInserts:
    def test_random_inserts_sorted_scan(self):
        tree = BPlusTree(order=8)
        keys = list(range(2000))
        random.seed(3)
        random.shuffle(keys)
        for k in keys:
            tree.insert(k, str(k).encode())
        assert [k for k, _ in tree.range(0, 1999)] == list(range(2000))

    def test_overwrite_existing_key(self):
        tree = BPlusTree(order=8)
        tree.insert(5, b"old")
        tree.insert(7, b"x")
        tree.insert(5, b"new")
        assert tree.get(5) == b"new"
        assert len(tree) == 2

    def test_mixed_append_and_insert(self):
        tree = BPlusTree(order=8)
        for i in range(0, 100, 2):
            tree.insert(i, b"even")
        for i in range(1, 100, 2):
            tree.insert(i, b"odd")
        assert [k for k, _ in tree.range(0, 99)] == list(range(100))


class TestLsmKv:
    def test_put_get_through_flush(self):
        kv = LsmKv(memtable_entries=100)
        for i in range(1000):
            kv.put(i, str(i).encode())
        for probe in (0, 57, 500, 999):
            assert kv.get(probe) == str(probe).encode()
        assert kv.get(5000) is None

    def test_overwrite_newest_wins_across_levels(self):
        kv = LsmKv(memtable_entries=10)
        for i in range(100):
            kv.put(i % 10, f"v{i}".encode())
        for key in range(10):
            assert kv.get(key) == f"v{90 + key}".encode()

    def test_range_merges_levels_and_memtable(self):
        kv = LsmKv(memtable_entries=16)
        for i in range(200):
            kv.put(i, str(i).encode())
        got = kv.range(50, 60)
        assert [k for k, _ in got] == list(range(50, 61))

    def test_compaction_counters(self):
        kv = LsmKv(memtable_entries=10, fanout=2)
        for i in range(500):
            kv.put(i, b"v")
        assert kv.stats.memtable_flushes == 50
        assert kv.stats.compactions > 0
        assert kv.write_amplification > 0.5

    def test_entry_count_after_dedup(self):
        kv = LsmKv(memtable_entries=10, fanout=2)
        for i in range(300):
            kv.put(i % 30, b"v")
        kv.flush()
        # At most 30 distinct keys survive in fully compacted form, plus
        # duplicates not yet compacted together.
        assert 30 <= kv.entry_count <= 300
        assert kv.stats.entries_dropped > 0

    def test_wal_optional(self):
        from repro.core.storage import MemoryStorage

        wal = MemoryStorage()
        kv = LsmKv(memtable_entries=100, wal=wal)
        kv.put(1, b"abc")
        assert wal.size > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LsmKv(memtable_entries=0)
