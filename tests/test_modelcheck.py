"""Tests for loommc: the model-checking engine, the protocol models,
the seeded-mutant self-tests, and the packet-trace conformance layer.

Structure mirrors the tool:

* engine unit tests on a tiny toy model (BFS shortest counterexamples,
  budget/depth bounds, replay exactness, JSON round-trip, liveness);
* the real protocol models explored *completely* with zero safety or
  liveness violations (the PR's acceptance bar);
* every seeded mutant caught with a counterexample that replays
  exactly — including from its JSON wire form;
* conformance unit tests on synthetic packet traces, plus one live
  server+faulty-client integration check.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

import pytest

from repro.core.modelcheck import (
    CheckResult,
    Counterexample,
    Invariant,
    Model,
    ModelChecker,
    ModelCheckError,
    State,
    check_eventually,
    clear_counterexamples,
    dump_live_counterexamples,
    replay,
)
from tools.loommc.conformance import (
    abstract_actions,
    check_trace,
    parse_trace,
)
from tools.loommc.models import (
    MODELS,
    MUTANTS,
    BreakerModel,
    CoordinatorModel,
    IngestExactlyOnce,
    build_model,
    liveness_properties,
    model_for_mutant,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Mutant runs here must not leak counterexamples into the
    LOOM_STATS_DUMP failure hook of unrelated tests."""
    clear_counterexamples()
    yield
    clear_counterexamples()


# ======================================================================
# Engine unit tests (toy models)
# ======================================================================
class Counter(Model):
    """inc/dec on [0, limit]; optionally 'bad' above a threshold."""

    name = "counter"
    mutants = ("overflow",)

    def __init__(
        self, mutant: Optional[str] = None, limit: int = 5, bad_at: int = 3
    ) -> None:
        super().__init__(mutant)
        self.limit = limit
        self.bad_at = bad_at

    def initial(self) -> State:
        return 0

    def actions(self, state: State) -> Sequence[str]:
        assert isinstance(state, int)
        acts: List[str] = []
        if state < self.limit:
            acts.append("inc")
        if state > 0:
            acts.append("dec")
        return acts

    def apply(self, state: State, action: str) -> State:
        assert isinstance(state, int)
        return state + 1 if action == "inc" else state - 1

    def invariants(self) -> Sequence[Invariant]:
        def below(state: State) -> Optional[str]:
            assert isinstance(state, int)
            if self.mutant == "overflow" and state >= self.bad_at:
                return f"counter reached {state}"
            return None

        def non_negative(state: State) -> Optional[str]:
            assert isinstance(state, int)
            return None if state >= 0 else "negative"

        return (("below-threshold", below), ("non-negative", non_negative))


def test_exploration_is_complete_and_counts_states():
    result = ModelChecker(Counter(limit=5)).explore()
    assert result.clean
    assert result.complete
    assert result.states == 6          # 0..5
    assert result.depth == 5
    # inc from 0..4 and dec from 1..5.
    assert result.transitions == 10


def test_first_counterexample_is_shortest():
    result = ModelChecker(Counter(mutant="overflow", bad_at=3)).explore()
    assert not result.clean
    cx = result.violations[0]
    assert cx.invariant == "below-threshold"
    assert cx.steps == ("inc", "inc", "inc")   # BFS => minimal trace
    assert cx.mutant == "overflow"


def test_max_states_budget_yields_incomplete_result():
    result = ModelChecker(Counter(limit=100), max_states=10).explore()
    assert not result.complete
    assert result.states <= 11


def test_max_depth_bounds_exploration():
    result = ModelChecker(Counter(limit=100), max_depth=4).explore()
    assert result.complete             # frontier exhausted within the bound
    assert result.depth == 4
    assert result.states == 5          # 0..4


def test_stop_on_violation_false_collects_per_invariant():
    class DoubleBad(Counter):
        def invariants(self) -> Sequence[Invariant]:
            def a(state: State) -> Optional[str]:
                assert isinstance(state, int)
                return "a" if state >= 2 else None

            def b(state: State) -> Optional[str]:
                assert isinstance(state, int)
                return "b" if state >= 3 else None

            return (("inv-a", a), ("inv-b", b))

    result = ModelChecker(DoubleBad(), stop_on_violation=False).explore()
    assert [cx.invariant for cx in result.violations] == ["inv-a", "inv-b"]
    # Each is still the shortest trace for its own invariant.
    assert result.violations[0].steps == ("inc", "inc")
    assert result.violations[1].steps == ("inc", "inc", "inc")


def test_path_to_walks_the_bfs_tree():
    result = ModelChecker(Counter(limit=4)).explore()
    assert result.path_to(0) == ()
    assert result.path_to(3) == ("inc", "inc", "inc")


def test_unknown_mutant_is_a_model_check_error():
    with pytest.raises(ModelCheckError):
        Counter(mutant="nope")


def test_replay_reproduces_recorded_counterexample():
    result = ModelChecker(Counter(mutant="overflow")).explore()
    cx = result.violations[0]
    rr = replay(Counter(mutant="overflow"), cx)
    assert rr.reproduced
    assert rr.diverged_at is None


def test_replay_flags_divergent_trace():
    cx = Counterexample(
        model="counter", invariant="below-threshold",
        error="x", steps=("dec",),            # dec is not enabled at 0
    )
    rr = replay(Counter(mutant="overflow"), cx)
    assert not rr.reproduced
    assert rr.diverged_at == 0


def test_replay_flags_non_minimal_trace():
    cx = Counterexample(
        model="counter", invariant="below-threshold",
        error="x", steps=("inc", "inc", "inc", "inc"),
    )
    rr = replay(Counter(mutant="overflow", bad_at=3), cx)
    assert not rr.reproduced
    assert "not minimal" in rr.error


def test_replay_flags_unreproduced_failure():
    cx = Counterexample(
        model="counter", invariant="below-threshold",
        error="x", steps=("inc",),
    )
    rr = replay(Counter(mutant="overflow", bad_at=3), cx)
    assert not rr.reproduced
    assert "did NOT reproduce" in rr.error


def test_replay_flags_unknown_invariant():
    cx = Counterexample(model="counter", invariant="ghost", error="x", steps=())
    rr = replay(Counter(), cx)
    assert not rr.reproduced
    assert "no invariant" in rr.error


def test_counterexample_json_round_trip():
    cx = Counterexample(
        model="ingest", invariant="exactly-once-apply",
        error="batch seq=1 applied 2 times",
        steps=("client.send", "server.admit seq=1"),
        mutant="dedup_flip",
    )
    again = Counterexample.from_json(cx.to_json())
    assert again == cx
    payload = json.loads(cx.to_json())
    assert payload["version"] == Counterexample.FORMAT_VERSION


def test_counterexample_json_rejects_garbage_and_bad_version():
    with pytest.raises(ModelCheckError):
        Counterexample.from_json("not json {")
    with pytest.raises(ModelCheckError):
        Counterexample.from_json(json.dumps([1, 2]))
    bad = json.loads(Counterexample(
        model="m", invariant="i", error="e", steps=()
    ).to_json())
    bad["version"] = 99
    with pytest.raises(ModelCheckError):
        Counterexample.from_json(json.dumps(bad))


def test_liveness_requires_complete_exploration():
    result = ModelChecker(Counter(limit=100), max_states=5).explore()
    with pytest.raises(ModelCheckError):
        check_eventually(
            result, "x", lambda s: True, lambda s: False, lambda a: True
        )


def test_liveness_holds_and_fails_on_toy_graph():
    result = ModelChecker(Counter(limit=3)).explore()
    # Every state can reach 0 via fair 'dec' steps.
    ok = check_eventually(
        result, "drains", lambda s: True, lambda s: s == 0,
        fair=lambda a: a == "dec",
    )
    assert ok is None
    # ...but not via 'inc' alone: state 1 is stuck.
    cx = check_eventually(
        result, "drains-up", lambda s: s == 1, lambda s: s == 0,
        fair=lambda a: a == "inc",
    )
    assert cx is not None
    assert cx.invariant == "drains-up"
    assert cx.steps == ("inc",)         # shortest path to the stuck state


def test_counterexamples_mirror_into_live_dump():
    ModelChecker(Counter(mutant="overflow")).explore()
    dump = dump_live_counterexamples()
    assert "counter" in dump and "below-threshold" in dump
    clear_counterexamples()
    assert dump_live_counterexamples() == ""


# ======================================================================
# The real protocol models: complete, clean, live
# ======================================================================
def _check_full(model: Model) -> CheckResult:
    result = ModelChecker(model).explore()
    assert result.complete, f"{model.name}: exploration hit the budget"
    return result


@pytest.fixture(scope="module")
def ingest_result() -> CheckResult:
    return ModelChecker(IngestExactlyOnce()).explore()


def test_ingest_model_explores_completely_and_cleanly(ingest_result):
    assert ingest_result.complete
    assert ingest_result.clean
    # The adversarial network gives this model real breadth; a tiny
    # state count would mean the adversary was accidentally disabled.
    assert ingest_result.states > 5_000
    assert ingest_result.transitions > ingest_result.states


def test_ingest_liveness_backpressure_resumes(ingest_result):
    model = IngestExactlyOnce()
    props = liveness_properties(model)
    assert [p[0] for p in props] == ["backpressure-resumes"]
    name, premise, goal, fair = props[0]
    assert check_eventually(ingest_result, name, premise, goal, fair) is None


@pytest.mark.parametrize("name", sorted(MODELS))
def test_real_models_are_clean_including_liveness(name):
    model = build_model(name)
    result = _check_full(model)
    assert result.clean, result.violations
    for prop_name, premise, goal, fair in liveness_properties(model):
        cx = check_eventually(result, prop_name, premise, goal, fair)
        assert cx is None, cx and cx.render()


def test_registry_is_consistent():
    assert set(MUTANTS.values()) <= set(MODELS)
    for mutant, host in MUTANTS.items():
        assert mutant in MODELS[host].mutants
    with pytest.raises(KeyError):
        build_model("no-such-model")
    with pytest.raises(KeyError):
        model_for_mutant("no-such-mutant")


# ======================================================================
# Seeded mutants: every one caught, every counterexample replays
# ======================================================================
def _find_mutant_violation(mutant: str) -> Counterexample:
    """Mirror `loommc check --mutant`: safety first, then liveness."""
    model = model_for_mutant(mutant)
    result = ModelChecker(model).explore()
    if result.violations:
        return result.violations[0]
    assert result.complete
    for name, premise, goal, fair in liveness_properties(model):
        cx = check_eventually(
            result, name, premise, goal, fair, mutant=mutant
        )
        if cx is not None:
            return cx
    pytest.fail(f"seeded mutant {mutant!r} was NOT caught")


@pytest.mark.parametrize("mutant", sorted(MUTANTS))
def test_every_seeded_mutant_is_caught_and_replays(mutant):
    cx = _find_mutant_violation(mutant)
    assert cx.mutant == mutant
    assert cx.steps or cx.invariant  # a real, renderable counterexample
    # Round-trip through the JSON wire format, then replay exactly on a
    # fresh model instance — the CI artifact contract.
    again = Counterexample.from_json(cx.to_json())
    assert again == cx
    from tools.loommc.__main__ import _replay_exact

    assert _replay_exact(MUTANTS[mutant], again), (
        f"counterexample for {mutant!r} did not replay exactly:\n"
        + cx.render()
    )


def test_dedup_flip_mutant_violates_exactly_once():
    """The ordering bug the pending-before-dedup rule exists to stop:
    discarding pending before recording dedup opens a window where a
    duplicate admission re-applies the batch."""
    cx = _find_mutant_violation("dedup_flip")
    assert cx.invariant == "exactly-once-apply"
    rr = replay(model_for_mutant("dedup_flip"), cx)
    assert rr.reproduced
    assert "applied 2 times" in rr.error
    # ...and the trace must NOT reproduce on the real model.
    real = replay(IngestExactlyOnce(), cx)
    assert not real.reproduced


def test_probe_no_readmit_is_a_liveness_catch():
    """probe_no_readmit breaks no safety invariant — only the liveness
    pass can see a node stuck in quarantine forever."""
    model = model_for_mutant("probe_no_readmit")
    result = ModelChecker(model).explore()
    assert result.clean and result.complete
    cx = _find_mutant_violation("probe_no_readmit")
    assert cx.invariant.startswith("readmission-probes-node-")


def test_breaker_double_trial_caught():
    cx = _find_mutant_violation("double_trial")
    assert cx.invariant == "single-half-open-trial"


# ======================================================================
# CLI exit codes
# ======================================================================
def test_cli_list_and_mutant_selftest(capsys):
    from tools.loommc.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ingest" in out and "dedup_flip" in out
    assert main(["check", "--model", "breaker"]) == 0
    assert main(["check", "--mutant", "double_trial"]) == 0
    assert main(["check", "--mutant", "no-such"]) == 2
    assert main(["check", "--model", "no-such"]) == 2
    assert main(["replay", "/no/such/file.json"]) == 2


def test_cli_mutant_writes_replayable_artifact(tmp_path, capsys):
    from tools.loommc.__main__ import main

    out_dir = tmp_path / "cx"
    assert main([
        "check", "--mutant", "shed_at_low", "--out", str(out_dir)
    ]) == 0
    files = sorted(out_dir.glob("counterexample-*.json"))
    assert files
    assert main(["replay", str(files[0])]) == 0
    capsys.readouterr()


# ======================================================================
# Conformance: packet traces vs the client projection of the model
# ======================================================================
def _send(seq, client="c", **extra):
    return {"event": "send", "op": "ingest", "client": client, "seq": seq,
            **extra}


def _ack(ok=True, **extra):
    return {"event": "recv", "ok": ok, "status": "ok", **extra}


def test_parse_trace_accepts_jsonl_and_skips_section_headers():
    text = "\n".join([
        "--- transport trace ---",
        json.dumps(_send(1)),
        "",
        json.dumps(_ack()),
    ])
    events = parse_trace(text)
    assert [e["event"] for e in events] == ["send", "recv"]
    with pytest.raises(ModelCheckError):
        parse_trace("not json")
    with pytest.raises(ModelCheckError):
        parse_trace(json.dumps({"no_event_key": 1}))


def test_conforming_trace_is_clean():
    events = [
        _send(1), _ack(),
        _send(2, fault="dropped"), _send(2), _ack(deduped=True),
        {"event": "send", "op": "sync", "client": "c"},
        _ack(),
    ]
    assert check_trace(events) == []


def test_resend_after_ack_flagged():
    events = [_send(1), _ack(), _send(1)]
    found = check_trace(events)
    rules = [cx.invariant for cx in found]
    # The settled batch makes this both a resend-after-ack and (since
    # the ack closed the session) a non-increasing new batch.
    assert rules == ["no-resend-after-ack", "seq-strictly-increasing"]
    # The counterexample's steps are the offending trace prefix.
    assert len(found[0].steps) == 3


def test_seq_reuse_flagged():
    events = [_send(2), _ack(), _send(1)]
    found = check_trace(events)
    assert [cx.invariant for cx in found] == ["seq-strictly-increasing"]


def test_seq_gap_is_legal():
    # The client counter survives failed batches: gaps are fine.
    events = [_send(1), _ack(), _send(5), _ack()]
    assert check_trace(events) == []


def test_dedup_without_resend_flagged():
    events = [_send(1), _ack(deduped=True)]
    found = check_trace(events)
    assert [cx.invariant for cx in found] == ["dedup-implies-resend"]


def test_dedup_ack_with_no_open_batch_flagged():
    events = [_ack(deduped=True)]
    found = check_trace(events)
    assert [cx.invariant for cx in found] == ["ack-answers-open-batch"]


def test_sessions_are_tracked_per_client():
    # Two clients interleaved: each keeps its own seq space.
    events = [
        _send(1, client="a"), _ack(),
        _send(1, client="b"), _ack(),
    ]
    assert check_trace(events) == []


def test_uninformative_events_never_flag():
    events = [
        {"event": "recv", "fault": "torn"},        # no protocol fields
        {"event": "send"},                         # unparsed frame
        {"event": "connect"},
        _send(1), _ack(),
    ]
    assert check_trace(events) == []


def test_one_counterexample_per_rule():
    events = [_send(1), _ack(), _send(1), _ack(), _send(1)]
    found = check_trace(events)
    assert len([c for c in found
                if c.invariant == "no-resend-after-ack"]) == 1


def test_abstract_actions_projection():
    events = [
        _send(1), _ack(),
        _send(2, fault="dropped"), _send(2), _ack(deduped=True),
    ]
    actions = abstract_actions(events)
    assert actions == [
        "client.send seq=1", "client.recv.ack seq=1",
        "client.send seq=2", "net.drop.req seq=2",
        "client.timeout.resend seq=2", "client.recv.dup seq=2",
    ]


# ======================================================================
# Live integration: a real server's packet trace conforms
# ======================================================================
def test_live_server_trace_conforms_under_faults():
    from repro.daemon.client import LoomClient
    from repro.daemon.server import LoomServer, ServerConfig
    from repro.daemon.transport import FaultInjectingTransport, TcpTransport

    server = LoomServer(config=ServerConfig(shards=1)).start()
    try:
        transport = FaultInjectingTransport(
            TcpTransport(server.host, server.port)
        )
        client = LoomClient(
            transport=transport,
            client_id="mc-integration",
            deadline_s=5.0,
            attempt_timeout_s=0.2,
            backoff_base_s=0.01,
        )
        client.enable_source("mc")
        client.ingest("mc", [b"a", b"b"])
        transport.drop_next_sends(1)    # forces a resend -> dedup path
        client.ingest("mc", [b"c"])
        client.sync("mc")
        client.close()
    finally:
        server.stop()
    events = list(transport.trace)
    assert any(e.get("event") == "send" for e in events)
    violations = check_trace(events, origin="live-integration")
    assert violations == [], "\n\n".join(cx.render() for cx in violations)
    # The projection maps the real trace onto model action labels.
    actions = abstract_actions(events)
    assert any(a.startswith("client.send") for a in actions)
