"""End-to-end integration: the RocksDB case study (paper Figures 10b, 13).

Replays the three phases into Loom and verifies every aggregation query
returns the generator's exact ground truth: max and 99.99th-percentile
request latency (P1), pread64 aggregates over ~3% of the data (P2), and
the page-cache event count over ~0.5% of the data (P3).
"""

import pytest

from repro.core.histogram import exponential_edges
from repro.daemon import MonitoringDaemon
from repro.workloads import RocksDbCaseStudy, events

SCALE = 5e-4
DURATION = 5.0


@pytest.fixture(scope="module")
def ingested():
    workload = RocksDbCaseStudy(scale=SCALE, phase_duration_s=DURATION, seed=41)
    daemon = MonitoringDaemon()
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("pagecache", events.SRC_PAGECACHE)
    daemon.add_index(
        "app", "latency", events.latency_value, exponential_edges(0.5, 500.0, 16)
    )
    # pread64-only latency index: non-pread records land in no useful bin;
    # use a compound UDF that maps other syscalls below the histogram.
    daemon.add_index(
        "syscall",
        "pread-latency",
        lambda p: (
            events.latency_value(p)
            if events.latency_kind(p) == events.SYS_PREAD64
            else -1.0
        ),
        exponential_edges(0.5, 1000.0, 16),
    )
    daemon.add_index(
        "pagecache", "kind", events.pagecache_kind, [1.0, 2.0, 3.0, 4.0]
    )
    phases = workload.generate_all()
    for phase in phases:
        daemon.replay(phase.records)
    yield workload, daemon, phases
    daemon.close()


class TestPhase1Aggregates:
    def test_app_max_latency(self, ingested):
        workload, daemon, phases = ingested
        phase = phases[0]
        result = daemon.loom.indexed_aggregate(
            events.SRC_APP,
            daemon.index_id("app", "latency"),
            (phase.t_start_ns, phase.t_end_ns),
            "max",
        )
        assert result.value == pytest.approx(phase.truth["app_max_us"])

    def test_app_tail_latency(self, ingested):
        workload, daemon, phases = ingested
        phase = phases[0]
        result = daemon.loom.indexed_aggregate(
            events.SRC_APP,
            daemon.index_id("app", "latency"),
            (phase.t_start_ns, phase.t_end_ns),
            "percentile",
            percentile=99.99,
        )
        assert result.value == pytest.approx(phase.truth["app_p9999_us"])


class TestPhase2PreadAggregates:
    def test_pread_count_via_value_partition(self, ingested):
        """The pread-only UDF maps other syscalls to -1, so counting values
        >= 0 counts exactly the pread64 records."""
        workload, daemon, phases = ingested
        phase = phases[1]
        records = daemon.loom.indexed_scan(
            events.SRC_SYSCALL,
            daemon.index_id("syscall", "pread-latency"),
            (phase.t_start_ns, phase.t_end_ns),
            (0.0, float("inf")),
        )
        assert len(records) == int(phase.truth["pread_count"])

    def test_pread_max(self, ingested):
        workload, daemon, phases = ingested
        phase = phases[1]
        result = daemon.loom.indexed_aggregate(
            events.SRC_SYSCALL,
            daemon.index_id("syscall", "pread-latency"),
            (phase.t_start_ns, phase.t_end_ns),
            "max",
        )
        assert result.value == pytest.approx(phase.truth["pread_max_us"])

    def test_pread_selectivity(self, ingested):
        """Figure 10b: the P2 queries touch only ~3% of the data."""
        workload, daemon, phases = ingested
        phase = phases[1]
        assert phase.truth["pread_count"] / phase.record_count < 0.05


class TestPhase3PageCacheCount:
    def test_add_event_count(self, ingested):
        """The Phase 3 query: count mm_filemap_add_to_page_cache events."""
        workload, daemon, phases = ingested
        phase = phases[2]
        kind = float(events.PC_ADD_TO_PAGE_CACHE)
        records = daemon.loom.indexed_scan(
            events.SRC_PAGECACHE,
            daemon.index_id("pagecache", "kind"),
            (phase.t_start_ns, phase.t_end_ns),
            (kind, kind),
        )
        assert len(records) == int(phase.truth["pagecache_add_count"])

    def test_count_served_mostly_from_summaries(self, ingested):
        """Loom answers the count 'using counts stored in chunk summaries';
        most chunks should not be scanned."""
        workload, daemon, phases = ingested
        phase = phases[2]
        result = daemon.loom.indexed_aggregate(
            events.SRC_PAGECACHE,
            daemon.index_id("pagecache", "kind"),
            (phase.t_start_ns, phase.t_end_ns),
            "count",
        )
        stats = result.stats
        assert stats.summaries_aggregated > 0


class TestCrossPhaseWindows:
    def test_aggregate_over_all_phases(self, ingested):
        workload, daemon, phases = ingested
        t_range = (0, daemon.clock.now())
        result = daemon.loom.indexed_aggregate(
            events.SRC_APP, daemon.index_id("app", "latency"), t_range, "count"
        )
        expected = daemon.loom.source_record_count(events.SRC_APP)
        assert result.value == float(expected)

    def test_window_restricted_to_single_phase(self, ingested):
        workload, daemon, phases = ingested
        phase = phases[1]
        app_in_phase = sum(
            1 for _, sid, _ in phase.records if sid == events.SRC_APP
        )
        result = daemon.loom.indexed_aggregate(
            events.SRC_APP,
            daemon.index_id("app", "latency"),
            (phase.t_start_ns, phase.t_end_ns - 1),
            "count",
        )
        assert result.value == float(app_in_phase)
