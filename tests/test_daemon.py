"""Tests for the monitoring-daemon substrate (paper Figure 4, §5.3)."""

import pytest

from repro.core import MonotonicClock
from repro.core.errors import LoomError
from repro.daemon import MonitoringDaemon
from repro.workloads import events, latency_stream


class TestSourceManagement:
    def test_enable_and_receive(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("app")
            daemon.clock.set(100)
            daemon.receive("app", b"payload")
            daemon.sync()
            handle = daemon.source("app")
            assert handle.records_received == 1
            records = daemon.loom.raw_scan(handle.source_id, (0, 200))
            assert len(records) == 1

    def test_auto_assigned_ids_are_unique(self):
        with MonitoringDaemon() as daemon:
            a = daemon.enable_source("a")
            b = daemon.enable_source("b")
            assert a.source_id != b.source_id

    def test_explicit_source_id(self):
        with MonitoringDaemon() as daemon:
            handle = daemon.enable_source("app", source_id=42)
            assert handle.source_id == 42

    def test_duplicate_name_rejected(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("app")
            with pytest.raises(LoomError):
                daemon.enable_source("app")

    def test_disable_then_unknown(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("app")
            daemon.disable_source("app")
            with pytest.raises(LoomError):
                daemon.source("app")

    def test_source_names(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("x")
            daemon.enable_source("y")
            assert set(daemon.source_names()) == {"x", "y"}


class TestIndexLifecycle:
    def test_add_and_query_index(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("syscall", events.SRC_SYSCALL)
            daemon.add_index(
                "syscall", "latency", events.latency_value, [10.0, 100.0]
            )
            daemon.replay(latency_stream(2000, 1.0, seed=3))
            index_id = daemon.index_id("syscall", "latency")
            result = daemon.loom.indexed_aggregate(
                events.SRC_SYSCALL, index_id, (0, daemon.clock.now()), "count"
            )
            assert result.value == 2000.0

    def test_duplicate_index_name_rejected(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("s")
            daemon.add_index("s", "v", events.latency_value, [1.0])
            with pytest.raises(LoomError):
                daemon.add_index("s", "v", events.latency_value, [2.0])

    def test_remove_missing_index(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("s")
            with pytest.raises(LoomError):
                daemon.remove_index("s", "nope")

    def test_redefine_index_gets_new_id(self):
        """The §5.3 changing-workload flow: close stale, define fresh."""
        with MonitoringDaemon() as daemon:
            daemon.enable_source("s", events.SRC_SYSCALL)
            old = daemon.add_index("s", "lat", events.latency_value, [10.0])
            new = daemon.redefine_index(
                "s", "lat", events.latency_value, [100.0, 1000.0]
            )
            assert new != old
            assert daemon.index_id("s", "lat") == new


class TestReplay:
    def test_replay_preserves_virtual_timestamps(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("syscall", events.SRC_SYSCALL)
            stream = latency_stream(1000, 2.0, seed=5)
            count = daemon.replay(stream)
            assert count == len(stream)
            records = daemon.loom.raw_scan(
                events.SRC_SYSCALL, (0, daemon.clock.now())
            )
            got_ts = sorted(r.timestamp for r in records)
            assert got_ts == [t for t, _, _ in stream]

    def test_replay_never_drops(self):
        """Loom's completeness guarantee, via the daemon path."""
        with MonitoringDaemon() as daemon:
            daemon.enable_source("syscall", events.SRC_SYSCALL)
            stream = latency_stream(5000, 1.0, seed=6)
            assert daemon.replay(stream) == 5000
            assert daemon.loom.total_records == 5000

    def test_replay_requires_virtual_clock(self):
        daemon = MonitoringDaemon(clock=MonotonicClock())
        daemon.enable_source("s", 1)
        with pytest.raises(LoomError):
            daemon.replay([(0, 1, b"x")])
        daemon.close()

    def test_replay_tolerates_equal_timestamps(self):
        with MonitoringDaemon() as daemon:
            daemon.enable_source("s", 1)
            daemon.replay([(100, 1, b"a"), (100, 1, b"b"), (100, 1, b"c")])
            assert daemon.loom.total_records == 3
