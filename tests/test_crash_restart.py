"""Warm restart: kill-and-reopen round trips over persisted logs.

These tests simulate a crash by dropping a Loom instance *without* calling
``close()`` — whatever reached persistent storage (flushed blocks) is the
crash state — then reopen with :meth:`Loom.open` and check that every
persisted record is queryable, new pushes resume the per-source chains,
and the rebuilt index mirrors match a cold rebuild from the raw files.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FileStorage,
    Loom,
    LoomConfig,
    LoomError,
    VirtualClock,
    recover,
)
from repro.core.record import HEADER_SIZE
from repro.daemon.monitor import MonitoringDaemon

pytestmark = pytest.mark.faults


def small_config(data_dir, **overrides):
    defaults = dict(
        data_dir=data_dir,
        chunk_size=512,
        record_block_size=1024,
        index_block_size=1024,
        timestamp_block_size=256,
        timestamp_interval=4,
    )
    defaults.update(overrides)
    return LoomConfig(**defaults)


@pytest.fixture
def data_dir(tmp_path):
    return str(tmp_path / "loom")


class TestKillAndReopen:
    def test_persisted_records_survive_a_crash(self, data_dir):
        cfg = small_config(data_dir)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        loom.define_source(7)
        for i in range(200):
            clock.advance(10)
            loom.push(7, b"payload-%03d" % i)
        loom.sync()
        persisted = loom.record_log.log.persisted_tail
        assert persisted > 0  # several blocks flushed
        del loom  # crash: active block contents are lost

        reopened = Loom.open(cfg, clock=VirtualClock())
        survivors = persisted // (HEADER_SIZE + len(b"payload-000"))
        assert reopened.total_records == survivors
        records = reopened.raw_scan(7, (0, 10**12))
        assert len(records) == survivors
        # Oldest record is intact and the scan is newest-first.
        assert records[-1].payload == b"payload-000"
        assert records[0].payload == b"payload-%03d" % (survivors - 1)
        reopened.close()

    def test_chains_span_the_restart(self, data_dir):
        cfg = small_config(data_dir)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        loom.define_source(2)
        for i in range(120):
            clock.advance(5)
            loom.push(1 + i % 2, b"r%04d" % i)
        loom.sync()
        del loom

        clock2 = VirtualClock()
        reopened = Loom.open(cfg, clock=clock2)
        before_1 = reopened.source_record_count(1)
        before_2 = reopened.source_record_count(2)
        reopened.define_source(1)  # resume the recovered source
        reopened.define_source(2)
        for i in range(50):
            clock2.advance(5)
            reopened.push(1 + i % 2, b"n%04d" % i)
        reopened.sync()
        records = reopened.raw_scan(1, (0, 10**12))
        assert len(records) == before_1 + 25
        # The newest pre-crash record is reachable from the newest
        # post-restart record purely by following back-pointers.
        payloads = [bytes(r.payload) for r in records]
        assert payloads[0] == b"n%04d" % 48
        assert any(p.startswith(b"r") for p in payloads)
        assert len(reopened.raw_scan(2, (0, 10**12))) == before_2 + 25
        reopened.close()

    def test_clean_close_loses_nothing(self, data_dir):
        cfg = small_config(data_dir)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        loom.define_source(3)
        addresses = []
        for i in range(75):
            clock.advance(7)
            addresses.append(loom.push(3, b"x%02d" % i))
        loom.close()  # flushes the partial active block + fsyncs

        reopened = Loom.open(cfg, clock=VirtualClock())
        assert reopened.total_records == 75
        records = reopened.raw_scan(3, (0, 10**12))
        assert [r.address for r in reversed(records)] == addresses
        reopened.close()

    def test_reopen_requires_data_dir(self):
        with pytest.raises(LoomError):
            Loom.open(LoomConfig())

    def test_reopen_missing_directory_raises(self, data_dir):
        with pytest.raises(LoomError):
            Loom.open(small_config(data_dir))

    def test_indexes_must_be_redefined_and_apply_forward(self, data_dir):
        cfg = small_config(data_dir)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        loom.define_index(1, lambda p: float(len(p)), [0.0, 4.0, 8.0])
        for i in range(100):
            clock.advance(10)
            loom.push(1, b"v" * (1 + i % 6))
        loom.close()

        clock2 = VirtualClock()
        reopened = Loom.open(cfg, clock=clock2)
        reopened.define_source(1)
        # Old index ids are retired; a fresh definition gets a new id and
        # covers only post-restart records.
        new_id = reopened.define_index(1, lambda p: float(len(p)), [0.0, 4.0, 8.0])
        old_ids = {
            iid
            for s in reopened.record_log.chunk_index._summaries
            for (_sid, iid) in s.bins
        }
        assert new_id not in old_ids
        for i in range(40):
            clock2.advance(10)
            reopened.push(1, b"w" * (1 + i % 6))
        reopened.sync()
        # The reopen clock fast-forwards to the last recovered timestamp,
        # so post-restart records start strictly after it.
        t0 = clock2.now() - 40 * 10 + 1
        result = reopened.indexed_aggregate(1, new_id, (t0, clock2.now()), "count")
        assert result.value == 40
        reopened.close()

    def test_footprint_and_mirrors_match_cold_rebuild(self, data_dir):
        cfg = small_config(data_dir)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        loom.define_source(5)
        for i in range(300):
            clock.advance(3)
            loom.push(5, b"abcdef%04d" % i)
        loom.close()

        reopened = Loom.open(cfg, clock=VirtualClock())
        state = recover(
            FileStorage(cfg.record_log_path()),
            chunk_storage=FileStorage(cfg.chunk_index_path()),
            timestamp_storage=FileStorage(cfg.timestamp_index_path()),
        )
        mirror = reopened.record_log.chunk_index
        # Reopen may re-finalize chunks whose summaries were only
        # in-memory; after a clean close there are none, so the mirrors
        # must agree exactly with the persisted logs.
        assert [s.chunk_id for s in state.summaries] == mirror._chunk_ids
        assert reopened.total_records == state.total_records == 300
        assert (
            reopened.record_log.timestamp_index.entry_count
            == len(state.timestamp_entries)
        )
        reopened.close()


class TestDaemonReopen:
    def test_daemon_warm_restart_restores_named_sources(self, data_dir):
        cfg = small_config(data_dir)
        daemon = MonitoringDaemon(cfg)
        daemon.enable_source("cpu", 1)
        daemon.enable_source("net", 2)
        for i in range(64):
            daemon.clock.advance(10)
            daemon.receive("cpu", b"c%03d" % i)
            daemon.receive("net", b"n%03d" % i)
        daemon.close()

        restarted = MonitoringDaemon.reopen(cfg, sources={"cpu": 1, "net": 2})
        assert restarted.health().value == "healthy"
        assert sorted(restarted.recovered_source_ids()) == [1, 2]
        assert restarted.source("cpu").records_received == 64
        restarted.clock.advance(10)
        restarted.receive("cpu", b"after")
        restarted.sync()
        records = restarted.loom.raw_scan(1, (0, 10**15))
        assert len(records) == 65
        restarted.close()


class TestFsyncOnClose:
    def test_close_fsyncs_all_logs(self, data_dir, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        cfg = small_config(data_dir)
        loom = Loom(cfg, clock=VirtualClock(1))
        loom.define_source(1)
        loom.push(1, b"one")
        assert not synced  # ingest never pays fsync latency
        loom.close()
        # Three log files + three frame journals.
        assert len(synced) >= 6


class TestTruncationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n_records=st.integers(min_value=1, max_value=120),
        cut_back=st.integers(min_value=0, max_value=400),
        data=st.data(),
    )
    def test_arbitrary_truncation_is_recoverable(self, n_records, cut_back, data):
        """Truncate the persisted files at arbitrary byte offsets (simulating
        a crash mid-flush at any point), reopen, and check the invariants:
        no record below the new persisted watermark is lost, and the
        rebuilt indexes are consistent with the record log."""
        # tmp_path is function-scoped and incompatible with @given; manage
        # a directory per example by hand.
        root = tempfile.mkdtemp(prefix="loom-hyp-")
        try:
            cfg = small_config(os.path.join(root, "d"))
            clock = VirtualClock(1_000)
            loom = Loom(cfg, clock=clock)
            loom.define_source(9)
            for i in range(n_records):
                clock.advance(10)
                loom.push(9, b"record-%04d" % i)
            loom.close()

            # Cut each log (and journal) independently at a random offset.
            for path in (
                cfg.record_log_path(),
                cfg.chunk_index_path(),
                cfg.timestamp_index_path(),
                cfg.record_log_journal_path(),
                cfg.chunk_index_journal_path(),
                cfg.timestamp_index_journal_path(),
            ):
                size = os.path.getsize(path)
                cut = data.draw(st.integers(min_value=0, max_value=size))
                with open(path, "r+b") as f:
                    f.truncate(cut)

            record_size = HEADER_SIZE + len(b"record-0000")
            surviving_bytes = os.path.getsize(cfg.record_log_path())
            min_survivors = 0  # repair may truncate below the cut only to
            # a frame boundary, never below the last complete record.

            reopened = Loom.open(cfg)
            # Invariant 1: everything below the (post-repair) persisted
            # watermark is intact and queryable, in order.
            persisted = reopened.record_log.log.persisted_tail
            assert persisted % record_size == 0
            assert persisted <= surviving_bytes
            survivors = persisted // record_size
            assert survivors >= min_survivors
            records = reopened.raw_scan(9, (0, 10**15)) if survivors else []
            assert len(records) == survivors == reopened.total_records
            for i, record in enumerate(reversed(records)):
                assert bytes(record.payload) == b"record-%04d" % i
            # Invariant 2: index mirrors never reference truncated data.
            mirror = reopened.record_log.chunk_index
            for summary in mirror._summaries:
                assert summary.end_addr <= persisted
            ts = reopened.record_log.timestamp_index
            for per in ts._per_source.values():
                assert all(a < persisted for a in per.addresses)
            # Invariant 3: the instance is writable again.
            reopened.define_source(9)
            reopened.push(9, b"post-repair")
            reopened.sync()
            assert len(reopened.raw_scan(9, (0, 10**15))) == survivors + 1
            reopened.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
