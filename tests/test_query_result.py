"""QueryResult API: new query surface, deprecated shims, resolve_source."""

import pytest

from repro.core import LoomConfig, QueryStats
from repro.core.errors import LoomError
from repro.daemon.monitor import MonitoringDaemon

EVERYTHING = (0, 2**62)


class TestQueryResultSurface:
    def test_scan_result_carries_records_and_stats(self, indexed_loom):
        loom, source_id, _, values, _ = indexed_loom
        result = loom.scan(source_id, EVERYTHING)
        assert result.count == len(values)
        assert len(result.records) == len(values)
        assert result.stats.records_matched == len(values)
        assert result.source == str(source_id)
        assert result.value is None and result.trace is None

    def test_scan_streaming_form_leaves_records_none(self, indexed_loom):
        loom, source_id, _, values, _ = indexed_loom
        seen = []
        result = loom.scan(source_id, EVERYTHING, func=lambda r: seen.append(r))
        assert result.records is None
        assert result.count == len(values) == len(seen)

    def test_aggregate_result_carries_value(self, indexed_loom):
        loom, source_id, index_id, values, _ = indexed_loom
        result = loom.aggregate(source_id, index_id, EVERYTHING, "max")
        assert result.value == max(values)
        assert result.count == len(values)
        assert result.records is None

    def test_trace_stages_for_each_verb(self, indexed_loom):
        loom, source_id, index_id, _, _ = indexed_loom
        pct = loom.aggregate(
            source_id, index_id, EVERYTHING, "percentile",
            percentile=99.0, trace=True,
        )
        assert "summary-prune" in pct.trace.stages()
        assert "cdf" in pct.trace.stages()
        where = loom.scan_indexed(
            source_id, index_id, EVERYTHING, (100.0, 200.0), trace=True
        )
        assert "summary-prune" in where.trace.stages()
        assert any("scan" in s for s in where.trace.stages())
        assert loom.scan(source_id, EVERYTHING).trace is None  # opt-in


class TestDeprecatedShims:
    def test_raw_scan_warns_and_matches_scan(self, indexed_loom):
        loom, source_id, _, _, _ = indexed_loom
        with pytest.warns(DeprecationWarning, match="Loom.scan\\(\\)"):
            legacy = loom.raw_scan(source_id, EVERYTHING)
        assert legacy == loom.scan(source_id, EVERYTHING).records

    def test_indexed_scan_warns_and_matches_scan_indexed(self, indexed_loom):
        loom, source_id, index_id, _, _ = indexed_loom
        v_range = (50.0, 500.0)
        with pytest.warns(DeprecationWarning, match="scan_indexed"):
            legacy = loom.indexed_scan(source_id, index_id, EVERYTHING, v_range)
        current = loom.scan_indexed(source_id, index_id, EVERYTHING, v_range)
        assert legacy == current.records

    def test_indexed_aggregate_warns_and_matches_aggregate(self, indexed_loom):
        loom, source_id, index_id, _, _ = indexed_loom
        with pytest.warns(DeprecationWarning, match="Loom.aggregate\\(\\)"):
            legacy = loom.indexed_aggregate(
                source_id, index_id, EVERYTHING, "percentile", percentile=95.0
            )
        current = loom.aggregate(
            source_id, index_id, EVERYTHING, "percentile", percentile=95.0
        )
        assert legacy.value == current.value
        assert legacy.count == current.count

    def test_shims_merge_into_caller_stats(self, indexed_loom):
        loom, source_id, index_id, _, _ = indexed_loom
        stats = QueryStats()
        with pytest.warns(DeprecationWarning):
            loom.raw_scan(source_id, EVERYTHING, stats=stats)
        after_scan = stats.records_matched
        assert after_scan == 2000
        with pytest.warns(DeprecationWarning):
            agg = loom.indexed_aggregate(
                source_id, index_id, EVERYTHING, "sum", stats=stats
            )
        # Accumulation: the same object keeps growing across calls, and
        # the legacy AggregateResult hands back that same object.
        assert stats.records_matched > after_scan
        assert agg.stats is stats

    def test_new_surface_does_not_warn(self, indexed_loom):
        loom, source_id, index_id, _, _ = indexed_loom
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            loom.scan(source_id, EVERYTHING)
            loom.scan_indexed(source_id, index_id, EVERYTHING)
            loom.aggregate(source_id, index_id, EVERYTHING, "mean")


class TestResolveSource:
    @pytest.fixture
    def daemon(self, tmp_path):
        cfg = LoomConfig(data_dir=str(tmp_path / "loom"))
        d = MonitoringDaemon(config=cfg)
        d.enable_source("cpu", source_id=7)
        yield d
        d.close()

    def test_resolve_by_name_and_by_id(self, daemon):
        by_name = daemon.resolve_source("cpu")
        by_id = daemon.resolve_source(7)
        assert by_name is by_id
        assert by_name.name == "cpu" and by_name.source_id == 7

    def test_unknown_name_and_id_raise(self, daemon):
        with pytest.raises(LoomError):
            daemon.resolve_source("net")
        with pytest.raises(LoomError):
            daemon.resolve_source(99)

    def test_query_result_source_is_the_name(self, daemon):
        daemon.receive_batch("cpu", [b"abcd"] * 3)
        daemon.sync()
        result = daemon.scan(7, EVERYTHING)  # queried by id...
        assert result.source == "cpu"  # ...reported by name

    def test_recovered_unnamed_id_gets_transient_handle(self, tmp_path):
        cfg = LoomConfig(data_dir=str(tmp_path / "loom"))
        daemon = MonitoringDaemon(config=cfg)
        daemon.enable_source("cpu", source_id=7)
        daemon.receive_batch("cpu", [b"abcd"] * 3)
        daemon.close()

        reopened = MonitoringDaemon.reopen(cfg)  # no sources mapping
        try:
            handle = reopened.resolve_source(7)
            assert handle.name == "source-7"
            result = reopened.scan(7, EVERYTHING)
            assert result.source == "source-7"
            assert len(result.records) == 3
            # Naming it afterwards still works and takes precedence.
            reopened.enable_source("cpu", source_id=7)
            assert reopened.resolve_source(7).name == "cpu"
        finally:
            reopened.close()
