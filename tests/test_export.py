"""Tests for long-term retention export (paper §3)."""

import pytest

from repro.core.clock import seconds
from repro.daemon import (
    LoomSink,
    MonitoringDaemon,
    StreamingAggregator,
    export_range,
    iter_archive,
    read_archive,
)
from repro.workloads import events, latency_stream


@pytest.fixture
def populated_daemon():
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("app", events.SRC_APP)
    from repro.workloads import merge_streams

    syscalls = latency_stream(1000, 4.0, seed=1)
    app = latency_stream(
        500, 4.0, source_id=events.SRC_APP, kind=events.OP_GET, seed=2
    )
    daemon.replay(list(merge_streams([syscalls, app])))
    yield daemon
    daemon.close()


class TestExportRange:
    def test_roundtrip_all_sources(self, populated_daemon, tmp_path):
        daemon = populated_daemon
        path = str(tmp_path / "archive.loom.gz")
        t_range = (0, daemon.clock.now())
        info = export_range(
            daemon.loom, [events.SRC_SYSCALL, events.SRC_APP], t_range, path
        )
        assert info.record_count == daemon.loom.total_records
        read_info, rows = read_archive(path)
        assert read_info == info
        assert len(rows) == info.record_count

    def test_time_window_restricts_export(self, populated_daemon, tmp_path):
        daemon = populated_daemon
        path = str(tmp_path / "window.loom.gz")
        window = (seconds(1), seconds(2))
        info = export_range(daemon.loom, [events.SRC_SYSCALL], window, path)
        _, rows = read_archive(path)
        assert all(window[0] <= ts <= window[1] for _, ts, _ in rows)
        assert all(sid == events.SRC_SYSCALL for sid, _, _ in rows)
        expected = len(daemon.loom.raw_scan(events.SRC_SYSCALL, window))
        assert info.record_count == expected > 0

    def test_records_oldest_first_per_source(self, populated_daemon, tmp_path):
        daemon = populated_daemon
        path = str(tmp_path / "ordered.loom.gz")
        export_range(daemon.loom, [events.SRC_SYSCALL], (0, daemon.clock.now()), path)
        _, rows = read_archive(path)
        timestamps = [ts for _, ts, _ in rows]
        assert timestamps == sorted(timestamps)

    def test_payloads_preserved_exactly(self, populated_daemon, tmp_path):
        daemon = populated_daemon
        path = str(tmp_path / "payloads.loom.gz")
        t_range = (0, daemon.clock.now())
        export_range(daemon.loom, [events.SRC_APP], t_range, path)
        _, rows = read_archive(path)
        original = {
            r.timestamp: r.payload
            for r in daemon.loom.raw_scan(events.SRC_APP, t_range)
        }
        for _, ts, payload in rows:
            assert original[ts] == payload

    def test_iter_archive_streams(self, populated_daemon, tmp_path):
        daemon = populated_daemon
        path = str(tmp_path / "stream.loom.gz")
        info = export_range(
            daemon.loom, [events.SRC_SYSCALL], (0, daemon.clock.now()), path
        )
        assert sum(1 for _ in iter_archive(path)) == info.record_count

    def test_bad_magic_rejected(self, tmp_path):
        import gzip

        path = str(tmp_path / "bogus.gz")
        with gzip.open(path, "wb") as f:
            f.write(b"NOTLOOM!")
        with pytest.raises(ValueError):
            read_archive(path)

    def test_export_does_not_block_ingest(self, populated_daemon, tmp_path):
        """Export reads through a snapshot: pushes during/after export are
        unaffected and invisible to the archive."""
        daemon = populated_daemon
        snap = daemon.loom.snapshot()
        before = daemon.loom.total_records
        daemon.receive("app", events.pack_latency(9, 1.0, events.OP_GET))
        path = str(tmp_path / "snap.loom.gz")
        info = export_range(
            daemon.loom, [events.SRC_APP], (0, daemon.clock.now()),
            path, snapshot=snap,
        )
        app_before = before - 4000  # syscall records
        assert info.record_count == app_before
        assert daemon.loom.total_records == before + 1


class TestFrontEndSink:
    """Paper §8: streaming aggregation discards; a Loom sink retains."""

    def _spec(self):
        from repro.core import HistogramSpec

        return HistogramSpec([5.0, 20.0, 80.0, 320.0])

    def test_aggregator_histograms_match(self):
        from repro.core import Loom, LoomConfig, VirtualClock

        loom = Loom(LoomConfig(chunk_size=2048), clock=VirtualClock())
        sink = LoomSink(loom, events.SRC_SYSCALL, events.latency_value, self._spec())
        plain = StreamingAggregator(spec=self._spec(), value_of=events.latency_value)
        stream = latency_stream(2000, 2.0, seed=5)
        for t, _, payload in stream:
            loom.clock.set(max(t, loom.clock.now()))
            sink.observe(payload)
            plain.observe(payload)
        assert sink.histogram() == plain.histogram()
        assert sink.events_seen == plain.events_seen == len(stream)
        loom.close()

    def test_only_sink_can_drill_down(self):
        from repro.core import Loom, LoomConfig, VirtualClock

        loom = Loom(LoomConfig(chunk_size=2048), clock=VirtualClock())
        sink = LoomSink(loom, events.SRC_SYSCALL, events.latency_value, self._spec())
        plain = StreamingAggregator(spec=self._spec(), value_of=events.latency_value)
        stream = latency_stream(2000, 2.0, sigma=1.2, seed=6)
        for t, _, payload in stream:
            loom.clock.set(max(t, loom.clock.now()))
            sink.observe(payload)
            plain.observe(payload)
        # The suspicious bucket: the high outlier bin.
        outlier_bin = self._spec().high_outlier_bin
        expected = sink.histogram().get(outlier_bin, 0)
        assert expected > 0
        # Status quo front-end: nothing to investigate.
        assert plain.drill_down(outlier_bin) == []
        # Loom sink: the raw events behind the bucket.
        records = sink.drill_down(outlier_bin)
        assert len(records) == expected
        assert all(
            events.latency_value(r.payload) >= 320.0 for r in records
        )
        loom.close()
