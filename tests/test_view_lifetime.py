"""Runtime view-lifetime validation (the loomflow runtime twin).

Under the guard (``LOOMSAN=1``, or the fixture below), every zero-copy
view handed out by the storage tier is tracked in a ledger; storage
truncation, mmap remap, staging-block recycle, and close poison the
overlapping views, so a stale read raises a typed
:class:`~repro.core.errors.StaleViewError` carrying the original borrow
site — instead of silently returning recycled bytes.

These tests force each invalidation path with an outstanding view and
assert the typed failure; the hypothesis test at the bottom pins the
other half of the contract: while *no* invalidation happens, ``copy=True``
and ``copy=False`` scans are byte-identical.
"""

import contextlib
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import viewguard
from repro.core.block import Block
from repro.core.clock import VirtualClock
from repro.core.config import LoomConfig
from repro.core.errors import StaleViewError
from repro.core.record_log import RecordLog
from repro.core.snapshot import Snapshot
from repro.core.storage import FileStorage, MemoryStorage

SETTINGS = settings(max_examples=40, deadline=None)


@pytest.fixture
def guard():
    """Activate the view guard for one test (idempotent under LOOMSAN)."""
    was_active = viewguard.active
    viewguard.activate()
    yield viewguard
    if not was_active:
        viewguard.deactivate()


def _small_config(**overrides) -> LoomConfig:
    defaults = dict(
        chunk_size=512,
        record_block_size=1024,
        index_block_size=2048,
        timestamp_block_size=1024,
        timestamp_interval=8,
    )
    defaults.update(overrides)
    return LoomConfig(**defaults)


class TestStorageTruncate:
    def test_memory_truncate_poisons_overlapping_view(self, guard):
        storage = MemoryStorage()
        storage.append(b"a" * 64)
        view = storage.read_view(32, 32)
        assert bytes(view) == b"a" * 32
        storage.truncate(40)
        with pytest.raises(StaleViewError) as exc_info:
            bytes(view)
        err = exc_info.value
        assert "truncated" in (err.reason or "")
        assert err.borrow_site is not None
        assert re.search(r"test_view_lifetime\.py:\d+", err.borrow_site)

    def test_memory_truncate_spares_prefix_view(self, guard):
        storage = MemoryStorage()
        storage.append(b"b" * 64)
        prefix = storage.read_view(0, 16)
        storage.truncate(40)
        # Bytes below the new size were never invalidated.
        assert bytes(prefix) == b"b" * 16

    def test_file_truncate_remap_poisons_tail_view(self, tmp_path, guard):
        storage = FileStorage(str(tmp_path / "log.bin"))
        storage.append(b"c" * 4096)
        storage.sync()
        tail = storage.read_view(2048, 1024)
        head = storage.read_view(0, 512)
        assert tail is not None and head is not None
        storage.truncate(1024)
        with pytest.raises(StaleViewError) as exc_info:
            tail[0]
        assert exc_info.value.borrow_site is not None
        # The immutable prefix stays valid: the old map is pinned by the
        # outstanding view, and those bytes were not dropped.
        assert bytes(head) == b"c" * 512
        storage.close()
        with pytest.raises(StaleViewError):
            bytes(head)

    def test_close_poisons_all_views(self, guard):
        storage = MemoryStorage()
        storage.append(b"d" * 32)
        view = storage.read_view(0, 32)
        storage.close()
        with pytest.raises(StaleViewError) as exc_info:
            view[0]
        assert exc_info.value.borrow_site is not None


class TestBlockRecycle:
    def test_recycle_poisons_flush_view(self, guard):
        block = Block(64)
        block.map(0)
        block.write(b"e" * 48)
        view = block.flush_view()
        assert bytes(view) == b"e" * 48
        block.recycle()
        with pytest.raises(StaleViewError) as exc_info:
            view[0]
        assert "recycled" in (exc_info.value.reason or "")

    def test_buffer_handoff_keeps_view_valid(self, guard):
        # recycle(release_buffer=True) is the ownership-transfer path:
        # the block swaps in a fresh buffer, so the flushed bytes are
        # never overwritten and the view stays valid.
        block = Block(64)
        block.map(0)
        block.write(b"f" * 16)
        view = block.flush_view()
        block.recycle(release_buffer=True)
        assert bytes(view) == b"f" * 16

    def test_slice_shares_poison_state(self, guard):
        block = Block(64)
        block.map(0)
        block.write(b"g" * 32)
        view = block.flush_view()
        half = view[8:24]
        block.recycle()
        with pytest.raises(StaleViewError):
            bytes(half)


class TestScanViews:
    def test_log_truncation_invalidates_outstanding_scan_view(
        self, tmp_path, guard
    ):
        """The headline scenario: a copy=False scan view outlives a log
        truncation; touching it is a typed error naming the borrow site,
        not a silent read of remapped bytes."""
        cfg = _small_config(data_dir=str(tmp_path))
        log = RecordLog(config=cfg, clock=VirtualClock())
        log.define_source(1)
        # Enough records to flush full blocks: zero-copy views serve the
        # persisted prefix only.
        log.push_many(1, [b"x" * 32 for _ in range(64)])
        log.sync()
        persisted = log.log._storage.size
        record_size = 28 + 32  # header + payload
        end = (persisted // record_size) * record_size
        records = list(log.iter_records_between(0, end, copy=False))
        assert records
        payload = records[0].payload
        assert bytes(payload) == b"x" * 32
        log.log._storage.truncate(0)
        with pytest.raises(StaleViewError) as exc_info:
            bytes(payload)
        err = exc_info.value
        assert err.borrow_site is not None
        assert "iter_records_between" in err.borrow_site
        # The log was deliberately wrecked out-of-band; closing it may
        # fail its own flush-order invariants.
        with contextlib.suppress(Exception):
            log.close()

    def test_inactive_guard_returns_plain_views(self):
        if viewguard.active:
            pytest.skip("view guard active for the whole suite (LOOMSAN)")
        storage = MemoryStorage()
        storage.append(b"h" * 16)
        view = storage.read_view(0, 16)
        assert type(view) is memoryview


@SETTINGS
@given(
    payloads=st.lists(
        st.binary(min_size=0, max_size=32), min_size=1, max_size=40
    )
)
def test_copy_modes_byte_identical_without_invalidation(payloads):
    """copy=True and copy=False scans agree byte-for-byte while nothing
    invalidates the underlying storage — tracked views are transparent."""
    was_active = viewguard.active
    viewguard.activate()
    try:
        log = RecordLog(config=_small_config(), clock=VirtualClock())
        try:
            log.define_source(1)
            log.push_many(1, payloads)
            log.sync()
            snapshot = Snapshot.capture(log)
            copied = [
                bytes(r.payload)
                for r in log.iter_records_between(
                    0, snapshot.watermark, copy=True
                )
            ]
            borrowed = [
                bytes(r.payload)
                for r in log.iter_records_between(
                    0, snapshot.watermark, copy=False
                )
            ]
            assert copied == borrowed == list(payloads)
        finally:
            log.close()
    finally:
        if not was_active:
            viewguard.deactivate()
