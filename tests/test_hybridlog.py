"""Tests for the hybrid log (paper section 4.1): addressing, block
rotation, flushing, watermark publication, and the lock-free read path."""

import threading

import pytest

from repro.core.errors import AddressError, ClosedError
from repro.core.hybridlog import HybridLog
from repro.core.storage import MemoryStorage


class TestAddressing:
    def test_append_returns_logical_offsets(self):
        log = HybridLog(block_size=64)
        assert log.append(b"aaa") == 0
        assert log.append(b"bb") == 3
        assert log.tail_address == 5

    def test_read_back_in_memory(self):
        log = HybridLog(block_size=64)
        log.append(b"hello")
        log.append(b"world")
        assert log.read(0, 10) == b"helloworld"
        assert log.read(5, 5) == b"world"

    def test_read_past_tail_raises(self):
        log = HybridLog(block_size=64)
        log.append(b"abc")
        with pytest.raises(AddressError):
            log.read(0, 4)

    def test_read_zero_length(self):
        log = HybridLog(block_size=64)
        log.append(b"abc")
        assert log.read(1, 0) == b""


class TestBlockRotationAndFlush:
    def test_filling_block_flushes_to_storage(self):
        storage = MemoryStorage()
        log = HybridLog(storage=storage, block_size=8)
        log.append(b"12345678")  # exactly one block
        assert storage.size == 8
        assert log.stats.block_flushes == 1

    def test_append_spanning_blocks(self):
        log = HybridLog(block_size=8)
        address = log.append(b"0123456789abcdef0123")  # 20 bytes over 8B blocks
        assert address == 0
        assert log.read(0, 20) == b"0123456789abcdef0123"
        assert log.stats.block_flushes == 2

    def test_append_larger_than_both_blocks(self):
        log = HybridLog(block_size=4)
        blob = bytes(range(64))
        log.append(blob)
        assert log.read(0, 64) == blob

    def test_data_straddling_storage_and_memory(self):
        storage = MemoryStorage()
        log = HybridLog(storage=storage, block_size=8)
        log.append(b"aaaaaaaa")  # flushed
        log.append(b"bbbb")  # staged in memory
        assert storage.size == 8
        assert log.read(4, 8) == b"aaaabbbb"  # gathers across boundary
        assert log.in_memory_bytes == 4

    def test_many_small_appends_roundtrip(self):
        log = HybridLog(block_size=32)
        pieces = [bytes([i]) * (i % 7 + 1) for i in range(200)]
        addresses = [log.append(p) for p in pieces]
        for address, piece in zip(addresses, pieces):
            assert log.read(address, len(piece)) == piece

    def test_close_flushes_partial_block(self):
        storage = MemoryStorage()
        log = HybridLog(storage=storage, block_size=64)
        log.append(b"partial")
        log.close()
        assert storage.size == 7
        assert log.read(0, 7) == b"partial"

    def test_append_after_close_raises(self):
        log = HybridLog(block_size=8)
        log.close()
        with pytest.raises(ClosedError):
            log.append(b"x")

    def test_close_is_idempotent(self):
        log = HybridLog(block_size=8)
        log.append(b"ab")
        log.close()
        log.close()


class TestWatermark:
    def test_watermark_starts_at_zero(self):
        log = HybridLog(block_size=16)
        log.append(b"abcd")
        assert log.watermark == 0

    def test_publish_advances_to_tail(self):
        log = HybridLog(block_size=16)
        log.append(b"abcd")
        assert log.publish() == 4
        assert log.watermark == 4

    def test_publish_explicit_address(self):
        log = HybridLog(block_size=16)
        log.append(b"abcdef")
        log.publish(3)
        assert log.watermark == 3

    def test_publish_cannot_regress_or_exceed_tail(self):
        log = HybridLog(block_size=16)
        log.append(b"abcd")
        log.publish(4)
        with pytest.raises(AddressError):
            log.publish(2)
        with pytest.raises(AddressError):
            log.publish(5)


class TestThreadedFlush:
    def test_threaded_flush_roundtrip(self):
        log = HybridLog(block_size=64, threaded_flush=True)
        pieces = [bytes([i % 256]) * 17 for i in range(500)]
        addresses = [log.append(p) for p in pieces]
        for address, piece in zip(addresses, pieces):
            assert log.read(address, len(piece)) == piece
        log.close()
        # Everything must have reached storage after close.
        assert log.persisted_tail == log.tail_address

    def test_concurrent_reader_during_ingest(self):
        """A reader hammering the log while the writer appends must always
        see exactly the bytes that were written (seqlock + fallback)."""
        log = HybridLog(block_size=256, threaded_flush=True)
        n = 2000
        payload = b"0123456789abcdef"  # 16 bytes
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                watermark = log.watermark
                if watermark >= 16:
                    start = (watermark // 16 - 1) * 16
                    data = log.read(start, 16)
                    if data != payload:
                        errors.append((start, data))
                        return

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(n):
            log.append(payload)
            log.publish()
        done.set()
        thread.join()
        log.close()
        assert errors == []

    def test_fallback_counter_is_plausible(self):
        log = HybridLog(block_size=32)
        for _ in range(10):
            log.append(b"x" * 16)
        log.publish()
        log.read(0, 16 * 10)
        assert log.stats.reader_storage_fallbacks == 0  # no writer race here

    def test_note_fallback_holds_no_lock(self):
        """Regression: note_fallback runs on reader paths and must never
        block (LOOM101).  It used to guard the counter with a Lock; now
        it must work, and stay lock-free, even while another thread sits
        in the middle of the stats object's methods."""
        import inspect

        from repro.core.hybridlog import LogStats

        stats = LogStats()
        stats.note_fallback()
        stats.note_fallback()
        assert stats.reader_storage_fallbacks == 2
        # No lock attribute survives on the dataclass, and the method
        # source acquires nothing.
        assert not any(name.endswith("_lock") for name in vars(stats))
        source = inspect.getsource(LogStats.note_fallback)
        assert "acquire" not in source and "with self._" not in source


class TestStats:
    def test_counters(self):
        log = HybridLog(block_size=8)
        log.append(b"abcd")
        log.append(b"efgh")
        assert log.stats.appends == 2
        assert log.stats.bytes_appended == 8
        assert log.stats.block_flushes == 1
        assert log.stats.bytes_flushed == 8
