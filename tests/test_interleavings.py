"""Exhaustive interleaving exploration of the seqlock protocol (§5.5).

These tests replace sleep-based race tests with a model-checker-style
enumeration: every schedule of a recycling writer against a copying
reader is executed, and each outcome is checked against the seqlock
contract — a reader sees the old bytes, or an explicit retry signal,
never bytes from the block's next life.
"""

import pytest

from repro.core import yieldpoints
from repro.core.block import Block
from repro.core.errors import SnapshotRetry
from repro.core.schedule import (
    HookTeardownError,
    InterleavingExplorer,
    Scenario,
    ScheduleFuzzer,
    ThreadSpec,
    _abort_parked,
    _dispatch_hook,
    _ThreadController,
)


class UnversionedBlock(Block):
    """A block whose recycle 'forgets' the seqlock version bumps.

    This is the seeded known-bad mutant: without the odd/even bumps a
    reader that snapshotted its bounds before the recycle will happily
    copy bytes written after it — the exact bug LOOM102 and the seqlock
    protocol exist to prevent.
    """

    __slots__ = ()

    def recycle(self):  # loomlint: disable=LOOM102
        with self._lock:
            yieldpoints.hit("block.recycle.begin")
            self.base_address = None
            self.filled = 0
            yieldpoints.hit("block.recycle.cleared")
        if self.recycle_event is not None:
            self.recycle_event.set()


def recycle_vs_reader_scenario(block_cls):
    """Writer recycles+remaps a block while a reader copies its old range.

    The reader targets ``[0, 4)`` of the block's first life (b"AAAA").
    Consistent outcomes: the old bytes, or an explicit fallback signal.
    Bytes from the second life (b"BBBB") mean the seqlock failed.
    """
    block = block_cls(8)
    block.map(0)
    block.write(b"AAAA")

    def writer():
        block.recycle()
        block.map(8)  # the address space moves on; 0 is gone for good
        block.write(b"BB")
        block.write(b"BB")
        return None

    def reader():
        try:
            return block.read_range(0, 4, retries=2)
        except SnapshotRetry:
            return "fallback"

    def check(results):
        value = results["reader"]
        assert value in (b"AAAA", "fallback"), (
            f"reader observed {value!r} for address range [0, 4): the copy "
            f"validated against bytes from the block's next life"
        )

    return Scenario(
        threads=[ThreadSpec("writer", writer), ThreadSpec("reader", reader)],
        check=check,
    )


def counting_scenario(k):
    """Two threads with exactly ``k`` explicit yield points each."""

    def make(name):
        def fn():
            for i in range(k):
                yieldpoints.hit(f"{name}.{i}")
            return name

        return fn

    def check(results):
        assert results == {"a": "a", "b": "b"}

    return Scenario(
        threads=[ThreadSpec("a", make("a")), ThreadSpec("b", make("b"))],
        check=check,
    )


def binomial(n, k):
    num = 1
    for i in range(k):
        num = num * (n - i) // (i + 1)
    return num


class TestExplorerMechanics:
    def test_exhaustive_at_depth_k(self):
        """Two threads with k yield points → C(2k+2, k+1) schedules."""
        k = 2
        explorer = InterleavingExplorer(lambda: counting_scenario(k))
        result = explorer.explore()
        expected = binomial(2 * (k + 1), k + 1)  # C(6, 3) == 20
        assert len(result.schedules) == expected
        assert len(set(result.schedules)) == expected  # all distinct
        assert result.consistent

    def test_exhaustive_at_depth_3(self):
        k = 3
        explorer = InterleavingExplorer(lambda: counting_scenario(k))
        result = explorer.explore()
        assert len(result.schedules) == binomial(8, 4)  # 70
        assert len(set(result.schedules)) == 70

    def test_deterministic_across_runs(self):
        explorer = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(Block)
        )
        first = explorer.explore()
        second = explorer.explore()
        assert first.schedules == second.schedules
        assert first.failures == second.failures

    def test_schedule_grants_follow_thread_order(self):
        """The first schedule is all-of-thread-0 first: lexicographic DFS."""
        explorer = InterleavingExplorer(lambda: counting_scenario(1))
        result = explorer.explore()
        first = result.schedules[0]
        assert first == (0, 0, 1, 1)

    def test_max_schedules_guard(self):
        explorer = InterleavingExplorer(
            lambda: counting_scenario(3), max_schedules=10
        )
        with pytest.raises(RuntimeError, match="max_schedules"):
            explorer.explore()

    def test_thread_exception_is_a_failure_not_a_crash(self):
        def boom():
            raise ValueError("kaput")

        scenario = Scenario(
            threads=[ThreadSpec("t", boom)],
            check=lambda results: None,
        )
        result = InterleavingExplorer(lambda: scenario_copy(scenario)).explore()
        assert len(result.failures) == len(result.schedules) == 1
        assert "kaput" in result.failures[0].error

    def test_hook_cleared_after_exploration(self):
        InterleavingExplorer(lambda: counting_scenario(1)).explore()
        assert yieldpoints._hook is None

    def test_observers_removed_after_exploration(self):
        class Recorder:
            def on_event(self, label, info):
                pass

            def finish(self):
                return None

        def factory():
            scenario = counting_scenario(1)
            scenario.observers = [Recorder()]
            return scenario

        InterleavingExplorer(factory).explore()
        assert yieldpoints._observers == ()
        assert not yieldpoints.active


class TestHookTeardown:
    """Regression: clear_hook must not strand threads parked at a yield.

    Before the teardown callback existed, tearing down the hook while a
    scenario thread was parked on its gate semaphore left that (daemon)
    thread blocked forever — leaking a thread per timed-out run.
    """

    def test_clear_hook_invokes_teardown_after_unhooking(self):
        observed = []
        yieldpoints.set_hook(
            lambda label: None,
            teardown=lambda: observed.append(yieldpoints._hook),
        )
        yieldpoints.clear_hook()
        # The teardown ran exactly once, *after* the hook was unset, so
        # threads it wakes cannot re-enter the dispatch path.
        assert observed == [None]

    def test_clear_hook_releases_a_parked_thread(self):
        parked = ThreadSpec("parked", lambda: yieldpoints.hit("park.here"))
        controller = _ThreadController(parked)
        yieldpoints.set_hook(_dispatch_hook, teardown=_abort_parked)
        try:
            controller.start()
            controller.step(timeout=5.0)  # runs up to the yield and parks
            assert not controller.finished
        finally:
            yieldpoints.clear_hook()
        controller.thread.join(timeout=5.0)
        assert not controller.thread.is_alive(), (
            "clear_hook left the scenario thread parked on its gate"
        )
        assert controller.finished
        assert isinstance(controller.error, HookTeardownError)

    def test_clear_hook_fails_fast_a_never_granted_thread(self):
        spec = ThreadSpec("waiting", lambda: "ran")
        controller = _ThreadController(spec)
        yieldpoints.set_hook(_dispatch_hook, teardown=_abort_parked)
        try:
            controller.start()
        finally:
            yieldpoints.clear_hook()
        controller.thread.join(timeout=5.0)
        assert not controller.thread.is_alive()
        assert isinstance(controller.error, HookTeardownError)
        assert controller.result is None  # fn never ran


def scenario_copy(scenario):
    # Scenarios here are stateless; reuse is safe for this test only.
    return scenario


class TestSeqlockInterleavings:
    def test_recycle_vs_reader_all_schedules_consistent(self):
        """Acceptance: ≥ 200 distinct schedules, zero inconsistent reads."""
        explorer = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(Block)
        )
        result = explorer.explore()
        assert len(result.schedules) >= 200, len(result.schedules)
        assert len(set(result.schedules)) == len(result.schedules)
        assert result.consistent, result.failures[:3]

    def test_reader_sees_old_bytes_or_fallback_never_both_worlds(self):
        """Every reader outcome is one of the two contract outcomes."""
        outcomes = set()
        base_factory = lambda: recycle_vs_reader_scenario(Block)  # noqa: E731

        def factory():
            scenario = base_factory()
            original_check = scenario.check

            def recording_check(results):
                outcomes.add(
                    results["reader"]
                    if isinstance(results["reader"], str)
                    else bytes(results["reader"])
                )
                original_check(results)

            scenario.check = recording_check
            return scenario

        InterleavingExplorer(factory).explore()
        assert outcomes == {b"AAAA", "fallback"}

    def test_known_bad_interleaving_found_and_reproduced(self):
        """The unversioned mutant is caught, and its schedule replays."""
        explorer = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(UnversionedBlock)
        )
        result = explorer.explore()
        assert not result.consistent, (
            "the seeded seqlock bug produced no inconsistent schedule; "
            "the explorer is not exercising the race"
        )
        # The torn value contains bytes from the block's second life,
        # either fully ("BBBB") or half-written ("BBAA").
        assert any("BB" in f.error for f in result.failures)

        seeded = result.failures[0]
        replayed = explorer.replay(seeded.schedule)
        assert replayed is not None, "replay did not reproduce the failure"
        assert replayed.schedule == seeded.schedule
        assert replayed.error == seeded.error
        assert replayed.trace == seeded.trace

    def test_replay_of_consistent_schedule_returns_none(self):
        explorer = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(Block)
        )
        result = explorer.explore()
        assert explorer.replay(result.schedules[0]) is None

    def test_fuzzer_finds_the_seeded_mutant(self):
        """The randomized sampler, not just DFS, catches the torn read.

        Same seed and budget as CI's seeded fuzz pass: the PCT-style
        priority sampler must land on an inconsistent interleaving of
        the unversioned mutant well within the budget, and the recorded
        schedule must replay to the identical verdict without the RNG.
        """
        fuzzer = ScheduleFuzzer(
            lambda: recycle_vs_reader_scenario(UnversionedBlock),
            seed=20250806,
        )
        result = fuzzer.run(500, stop_on_failure=True)
        assert result.failures, (
            "500 seeded randomized schedules never produced a torn read "
            "on the unversioned mutant; the fuzzer is not sampling the "
            "racy region"
        )
        recorded = result.failures[0]
        assert "BB" in recorded.error
        replayed = fuzzer.replay(recorded)
        assert replayed is not None
        assert replayed.steps == recorded.steps
        assert replayed.trace == recorded.trace
        assert replayed.error == recorded.error

    def test_fuzzer_real_block_is_clean(self):
        fuzzer = ScheduleFuzzer(
            lambda: recycle_vs_reader_scenario(Block), seed=20250806
        )
        result = fuzzer.run(200)
        assert result.consistent, result.failures[:3]
        assert result.distinct > 10

    def test_traces_cover_the_seqlock_alphabet(self):
        """The exploration actually visits the instrumented yield points."""
        explorer = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(Block)
        )
        result = explorer.explore()
        # Re-run the first schedule to get its trace via replay machinery.
        schedule, _, _, trace, _ = explorer._execute((), result.schedules[0])
        labels = {entry.split(":", 1)[1] for entry in trace}
        assert "block.recycle.odd" in labels
        assert "block.try_copy.version1" in labels
