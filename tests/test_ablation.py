"""Index-ablation behaviour (paper Figure 16) and exact-match emulation
(Figure 17), asserted on *work counters* rather than wall-clock time so
the tests are robust: the latency claims follow from the scanning claims.
"""

import pytest

from repro.core import HistogramSpec, Loom, LoomConfig, QueryStats, VirtualClock
from repro.core.clock import seconds
from repro.core.operators import indexed_scan, raw_scan
from repro.workloads import events, latency_stream


@pytest.fixture(scope="module")
def long_stream_loom():
    """A long single-source stream (the Fig 16 setup: RocksDB-P2-like)."""
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(chunk_size=2048, record_block_size=1 << 16, timestamp_interval=32),
        clock=clock,
    )
    loom.define_source(events.SRC_SYSCALL)
    index_id = loom.define_index(
        events.SRC_SYSCALL,
        events.latency_value,
        HistogramSpec([2.0, 8.0, 32.0, 128.0, 512.0]),
    )
    stream = latency_stream(rate_per_s=2000, duration_s=60.0, seed=8)
    for t, sid, payload in stream:
        clock.set(max(t, clock.now()))
        loom.push(sid, payload)
    loom.sync()
    yield loom, index_id, clock
    loom.close()


def run_scan(loom, index_id, t_range, use_time, use_chunk):
    snap = loom.snapshot()
    index = loom.record_log.get_index(index_id)
    stats = QueryStats()
    records = list(
        indexed_scan(
            snap,
            events.SRC_SYSCALL,
            index,
            t_range[0],
            t_range[1],
            v_min=512.0,  # rare high-latency records
            stats=stats,
            use_time_index=use_time,
            use_chunk_index=use_chunk,
        )
    )
    return records, stats


class TestFigure16Ablation:
    WINDOW = (seconds(20), seconds(30))

    def test_all_configurations_agree_on_results(self, long_stream_loom):
        loom, index_id, _ = long_stream_loom
        results = {}
        for use_time in (True, False):
            for use_chunk in (True, False):
                records, _ = run_scan(
                    loom, index_id, self.WINDOW, use_time, use_chunk
                )
                results[(use_time, use_chunk)] = [r.address for r in records]
        baseline = results[(True, True)]
        assert all(v == baseline for v in results.values())

    def test_chunk_index_reduces_records_scanned(self, long_stream_loom):
        loom, index_id, _ = long_stream_loom
        _, with_chunk = run_scan(loom, index_id, self.WINDOW, True, True)
        _, without_chunk = run_scan(loom, index_id, self.WINDOW, True, False)
        assert with_chunk.records_scanned < without_chunk.records_scanned / 2

    def test_time_index_reduces_summaries_examined(self, long_stream_loom):
        loom, index_id, _ = long_stream_loom
        _, with_time = run_scan(loom, index_id, self.WINDOW, True, True)
        _, without_time = run_scan(loom, index_id, self.WINDOW, False, True)
        assert with_time.summaries_examined < without_time.summaries_examined

    def test_no_index_work_grows_with_lookback(self, long_stream_loom):
        """Figure 16's 'no indexes' curve: a chain walk from the tail costs
        proportionally to how far back the window lies."""
        loom, index_id, clock = long_stream_loom
        snap = loom.snapshot()
        work = []
        for lookback_s in (10, 30, 50):
            t_end = clock.now() - seconds(lookback_s)
            stats = QueryStats()
            list(
                raw_scan(
                    snap,
                    events.SRC_SYSCALL,
                    t_end - seconds(5),
                    t_end,
                    stats=stats,
                    use_time_index=False,
                )
            )
            work.append(stats.records_scanned)
        assert work[0] < work[1] < work[2]

    def test_time_index_makes_lookback_flat(self, long_stream_loom):
        """With the time index the same sweep does near-constant work."""
        loom, index_id, clock = long_stream_loom
        snap = loom.snapshot()
        work = []
        for lookback_s in (10, 30, 50):
            t_end = clock.now() - seconds(lookback_s)
            stats = QueryStats()
            list(
                raw_scan(
                    snap,
                    events.SRC_SYSCALL,
                    t_end - seconds(5),
                    t_end,
                    stats=stats,
                    use_time_index=True,
                )
            )
            work.append(stats.records_scanned)
        assert max(work) - min(work) < max(work) * 0.2


class TestFigure17ExactMatch:
    def test_single_bin_histogram_emulates_exact_index(self, long_stream_loom):
        """§6.4: a histogram with one bin around the target value acts as
        an exact-match index; scans skip all chunks without matches."""
        loom, _, clock = long_stream_loom
        exact_index = loom.define_index(
            events.SRC_SYSCALL, events.latency_value, HistogramSpec([512.0, 100000.0])
        )
        # Index applies to new data only: push a fresh stream.
        base = clock.now()
        stream = latency_stream(
            rate_per_s=2000, duration_s=10.0, t_start_ns=base, seed=9
        )
        for t, sid, payload in stream:
            clock.set(max(t, clock.now()))
            loom.push(sid, payload)
        loom.sync()
        stats = QueryStats()
        records = loom.indexed_scan(
            events.SRC_SYSCALL,
            exact_index,
            (base, clock.now()),
            (512.0, float("inf")),
            stats=stats,
        )
        expected = sum(
            1 for _, _, p in stream if events.latency_value(p) >= 512.0
        )
        assert len(records) == expected
        assert stats.chunks_skipped > 0
