"""Tests for repro.scope: exposition rendering and the selfscope loop."""

import numpy as np
import pytest

from repro.core import LoomConfig
from repro.core.histogram import HistogramSpec
from repro.core.metrics import MetricsRegistry
from repro.daemon.monitor import MonitoringDaemon
from repro.scope import SelfScope, render_exposition
from repro.scope.selfscope import instrument_point_name

EVERYTHING = (0, 2**62)


class TestExposition:
    def test_counter_and_gauge_lines(self):
        r = MetricsRegistry()
        r.counter("loom.ingest.records_total", help="records in").inc(42)
        r.gauge("loom.recovery.phase_ns", labels={"phase": "frames"}).set(9.0)
        text = render_exposition(r.snapshot())
        assert "# HELP loom_ingest_records_total records in" in text
        assert "# TYPE loom_ingest_records_total counter" in text
        assert "loom_ingest_records_total 42" in text
        assert 'loom_recovery_phase_ns{phase="frames"} 9.0' in text

    def test_histogram_buckets_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("lat", HistogramSpec([10.0, 100.0]))
        for v in (1.0, 50.0, 60.0, 500.0):
            h.observe(v)
        text = render_exposition(r.snapshot())
        # bin 0 (low outlier, v<10) folds into the first finite bucket.
        assert 'lat_bucket{le="10.0"} 1' in text
        assert 'lat_bucket{le="100.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 611.0" in text
        assert "lat_count 4" in text

    def test_name_sanitization(self):
        r = MetricsRegistry()
        r.counter("a.b-c/d").inc()
        text = render_exposition(r.snapshot())
        assert "a_b_c_d 1" in text

    def test_help_and_type_emitted_once_per_name(self):
        r = MetricsRegistry()
        r.counter("c", help="h", labels={"log": "a"}).inc()
        r.counter("c", help="h", labels={"log": "b"}).inc()
        text = render_exposition(r.snapshot())
        assert text.count("# TYPE c counter") == 1
        assert text.count("# HELP c h") == 1


class TestInstrumentPointName:
    def test_no_labels_is_bare_name(self):
        assert instrument_point_name("m", ()) == "m"

    def test_labels_flattened(self):
        assert (
            instrument_point_name("m", (("a", "1"), ("b", "2")))
            == "m{a=1,b=2}"
        )


@pytest.fixture
def busy_daemon(tmp_path):
    """A daemon that has done enough ingest to flush blocks."""
    cfg = LoomConfig(
        data_dir=str(tmp_path / "loom"),
        chunk_size=2048,
        record_block_size=8192,
    )
    daemon = MonitoringDaemon(config=cfg)
    daemon.enable_source("app")
    for _ in range(400):
        daemon.clock.advance(1_000_000)
        daemon.receive_batch("app", [b"x" * 32] * 8)
    daemon.sync()
    yield daemon
    daemon.close()


class TestSelfScope:
    def test_publish_creates_metric_sources(self, busy_daemon):
        scope = SelfScope(busy_daemon)
        exported = scope.publish()
        assert exported > 0
        assert scope.publish_cycles == 1
        assert scope.published_points == exported
        name = scope.source_name("loom.ingest.records_total")
        assert name in busy_daemon.source_names()

    def test_percentile_over_flush_latency_is_exact(self, busy_daemon):
        """The §6 dogfooding query: p99 flush latency from Loom's own log."""
        registry = busy_daemon.loom.metrics
        hist = registry.histogram(
            "loom.log.flush_latency_ns", labels={"log": "record"}
        )
        expected_samples = list(hist._samples)
        assert expected_samples  # ingest flushed blocks
        scope = SelfScope(busy_daemon)
        scope.publish()
        result = scope.percentile(
            "loom.log.flush_latency_ns", {"log": "record"}, EVERYTHING, 99.0
        )
        expected = float(
            np.percentile(expected_samples, 99.0, method="inverted_cdf")
        )
        assert result.value == expected
        assert result.count == len(expected_samples)
        assert result.source == scope.source_name(
            "loom.log.flush_latency_ns", {"log": "record"}
        )

    def test_aggregate_reads_back_counter_value(self, busy_daemon):
        scope = SelfScope(busy_daemon)
        scope.publish()
        result = scope.aggregate(
            "loom.ingest.records_total", None, EVERYTHING, "max"
        )
        assert result.value == 400 * 8

    def test_second_cycle_publishes_only_the_delta(self, busy_daemon):
        scope = SelfScope(busy_daemon)
        first = scope.publish()
        second = scope.publish()
        # Histogram sample windows were drained by the first cycle; the
        # second one carries only counters/gauges plus whatever the
        # first publication's own ingest produced.
        assert 0 < second < first

    def test_recursion_guard_drops_reentrant_publish(self, busy_daemon):
        scope = SelfScope(busy_daemon)
        scope._publishing = True
        assert scope.publish() == 0
        assert scope.publish_cycles == 0
        scope._publishing = False
        assert scope.publish() > 0

    def test_trace_flows_through_percentile(self, busy_daemon):
        scope = SelfScope(busy_daemon)
        scope.publish()
        result = scope.percentile(
            "loom.log.flush_latency_ns",
            {"log": "record"},
            EVERYTHING,
            50.0,
            trace=True,
        )
        assert result.trace is not None
        assert "cdf" in result.trace.stages()


class TestCliIntegration:
    def test_stats_verb_renders_registry(self, busy_daemon):
        from repro.daemon.cli import LoomCli

        cli = LoomCli(busy_daemon)
        result = cli.execute("stats")
        assert "loom_ingest_records_total 3200" in result.text
        assert "# TYPE loom_log_flush_latency_ns histogram" in result.text

    def test_trace_verb_appends_stage_account(self, busy_daemon):
        from repro.daemon.cli import LoomCli

        cli = LoomCli(busy_daemon)
        result = cli.execute("trace count app last 1h")
        assert "-- trace (app) --" in result.text
        assert result.value == 3200

    def test_trace_rejects_untraceable_verbs(self, busy_daemon):
        from repro.daemon.cli import CliError, LoomCli

        cli = LoomCli(busy_daemon)
        with pytest.raises(CliError):
            cli.execute("trace health")
