"""loomsan: the race detector, the shadow model, and their oracles.

Three layers under test:

* the vector-clock happens-before :class:`RaceDetector` riding explorer
  and fuzzer scenarios (zero findings on the real seqlock, the seeded
  ``UnversionedBlock`` mutant flagged under both drivers);
* the :class:`ShadowLog` reference model and the differential oracles
  of :func:`verify_log` (agreement on the real implementation, loud
  divergence when either side is tampered with);
* the ``install()`` instrumentation that the whole tier-1 suite runs
  under when ``LOOMSAN=1``.
"""

import struct

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import HistogramSpec, LoomConfig, VirtualClock
from repro.core.block import Block
from repro.core.record_log import RecordLog
from repro.core import sanitizer
from repro.core.sanitizer import (
    RaceDetector,
    SanitizerError,
    ShadowRecord,
    shadow_of,
    verify_log,
)
from repro.core.schedule import (
    FuzzSchedule,
    InterleavingExplorer,
    ScheduleFuzzer,
)

from test_interleavings import UnversionedBlock, recycle_vs_reader_scenario

FUZZ_SEED = 20250806
FUZZ_BUDGET = 500

VALUE = struct.Struct("<d")


def value_payload(value):
    return VALUE.pack(value)


def payload_value(payload):
    return VALUE.unpack_from(payload)[0]


def detector_scenario(block_cls):
    """The seqlock scenario judged *only* by the race detector."""
    scenario = recycle_vs_reader_scenario(block_cls)
    scenario.check = lambda results: None
    scenario.observers = [RaceDetector()]
    return scenario


# ----------------------------------------------------------------------
# Race detector under the exhaustive explorer
# ----------------------------------------------------------------------
class TestRaceDetectorDFS:
    def test_real_block_has_zero_findings(self):
        result = InterleavingExplorer(lambda: detector_scenario(Block)).explore()
        assert len(result.schedules) >= 200
        assert result.consistent, result.failures[:3]

    def test_mutant_flagged_by_detector_alone(self):
        """No semantic check needed: the happens-before model convicts."""
        result = InterleavingExplorer(
            lambda: detector_scenario(UnversionedBlock)
        ).explore()
        assert not result.consistent
        assert all("race detector" in f.error for f in result.failures)
        assert "unordered write" in result.failures[0].error

    def test_detector_agrees_exactly_with_semantic_check(self):
        """The HB model flags precisely the schedules whose outcome is torn."""
        by_detector = InterleavingExplorer(
            lambda: detector_scenario(UnversionedBlock)
        ).explore()
        by_check = InterleavingExplorer(
            lambda: recycle_vs_reader_scenario(UnversionedBlock)
        ).explore()
        assert {f.schedule for f in by_detector.failures} == {
            f.schedule for f in by_check.failures
        }

    def test_detector_failure_replays(self):
        explorer = InterleavingExplorer(
            lambda: detector_scenario(UnversionedBlock)
        )
        seeded = explorer.explore().failures[0]
        replayed = explorer.replay(seeded.schedule)
        assert replayed is not None
        assert replayed.error == seeded.error
        assert replayed.trace == seeded.trace


# ----------------------------------------------------------------------
# Race detector under the randomized fuzzer
# ----------------------------------------------------------------------
class TestRaceDetectorFuzzer:
    def test_real_block_clean_over_seeded_budget(self):
        fuzzer = ScheduleFuzzer(lambda: detector_scenario(Block), seed=FUZZ_SEED)
        result = fuzzer.run(FUZZ_BUDGET)
        assert result.attempted == FUZZ_BUDGET
        assert result.consistent, result.failures[:3]
        assert result.distinct > 10  # actually sampling the space

    def test_mutant_caught_within_budget_and_replay_is_exact(self):
        fuzzer = ScheduleFuzzer(
            lambda: detector_scenario(UnversionedBlock), seed=FUZZ_SEED
        )
        result = fuzzer.run(FUZZ_BUDGET, stop_on_failure=True)
        assert result.failures, (
            f"fuzzer missed the seeded mutant in {FUZZ_BUDGET} schedules"
        )
        recorded = result.failures[0]
        # The wire format round-trips and the replay reproduces the
        # identical merged trace and verdict.
        restored = FuzzSchedule.from_json(recorded.to_json())
        assert restored == recorded
        replayed = fuzzer.replay(restored)
        assert replayed is not None
        assert replayed.steps == recorded.steps
        assert replayed.trace == recorded.trace
        assert replayed.error == recorded.error

    def test_deterministic_for_equal_seeds(self):
        make = lambda: ScheduleFuzzer(  # noqa: E731
            lambda: detector_scenario(UnversionedBlock), seed=7
        )
        first = make().run(50)
        second = make().run(50)
        assert [f.steps for f in first.failures] == [
            f.steps for f in second.failures
        ]

    def test_schedule_serialization_rejects_foreign_versions(self):
        recorded = FuzzSchedule(seed=1, steps=("a",), trace=("a:x",), error="e")
        mangled = recorded.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError, match="format version"):
            FuzzSchedule.from_json(mangled)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_recorded_failing_schedules_replay_identically(seed):
    """Property (any seed): JSON round-trip + replay == identical trace."""
    fuzzer = ScheduleFuzzer(
        lambda: recycle_vs_reader_scenario(UnversionedBlock), seed=seed
    )
    result = fuzzer.run(200, stop_on_failure=True)
    assume(result.failures)
    recorded = result.failures[0]
    replayed = fuzzer.replay(FuzzSchedule.from_json(recorded.to_json()))
    assert replayed is not None
    assert replayed.steps == recorded.steps
    assert replayed.trace == recorded.trace
    assert replayed.error == recorded.error


# ----------------------------------------------------------------------
# Shadow model + differential oracles
# ----------------------------------------------------------------------
@pytest.fixture
def sanitized():
    """Install the LOOMSAN wrappers for this test; restore prior state."""
    was_installed = sanitizer.installed()
    sanitizer.install()
    yield
    if not was_installed:
        sanitizer.uninstall()


def small_config(**overrides):
    params = dict(
        chunk_size=512,
        record_block_size=4096,
        index_block_size=2048,
        timestamp_block_size=1024,
        timestamp_interval=8,
    )
    params.update(overrides)
    return LoomConfig(**params)


def build_log(n_records=200, clock=None):
    log = RecordLog(small_config(), clock=clock or VirtualClock())
    log.define_source(1)
    log.define_index(1, payload_value, HistogramSpec([1.0, 10.0, 100.0]))
    for i in range(n_records // 2):
        log.push(1, value_payload(float(i % 150) + 0.5))
        log.clock.advance(1000)
    log.push_many(
        1, [value_payload(float(i % 150) + 0.5) for i in range(n_records // 2)]
    )
    log.sync()
    return log


class TestShadowModel:
    def test_shadow_mirrors_every_ingest_operation(self, sanitized):
        log = build_log(100)
        shadow = shadow_of(log)
        assert shadow is not None
        assert len(shadow.records[1]) == 100
        assert [r.address for r in shadow.records[1]] == [
            r.address for r in log.iter_records_between(0, log.log.watermark)
        ]
        assert verify_log(log, shadow) == []
        log.close()
        assert shadow.closed

    def test_oracles_flag_a_missing_record(self, sanitized):
        log = build_log(60)
        shadow = shadow_of(log)
        dropped = shadow.records[1].pop()
        failures = verify_log(log, shadow)
        assert failures, f"dropping {dropped} went unnoticed"
        assert any("record_count" in f or "chain head" in f for f in failures)
        shadow.records[1].append(dropped)  # restore so close() stays clean
        log.close()

    def test_oracles_flag_tampered_payload_bytes(self, sanitized):
        log = build_log(60)
        shadow = shadow_of(log)
        victim = shadow.records[1][10]
        shadow.records[1][10] = ShadowRecord(
            timestamp=victim.timestamp,
            payload=value_payload(-1234.5),
            address=victim.address,
        )
        failures = verify_log(log, shadow)
        assert any("raw_scan" in f for f in failures)
        shadow.records[1][10] = victim
        log.close()

    def test_close_raises_on_divergence(self, sanitized):
        log = build_log(40)
        shadow = shadow_of(log)
        shadow.records[1].pop()
        with pytest.raises(SanitizerError, match="divergence"):
            log.close()

    def test_sync_runs_cheap_invariants(self, sanitized):
        log = build_log(40)
        shadow = shadow_of(log)
        shadow.records[1].pop()
        with pytest.raises(SanitizerError, match="record_count"):
            log.sync()

    def test_seek_oracle_catches_a_lying_timestamp(self, sanitized):
        log = build_log(80)
        shadow = shadow_of(log)
        # Shift every shadow timestamp by one tick: the entry the real
        # index returns no longer matches the shadow record at that
        # address, which is exactly what a mis-written RECORD entry
        # would look like.
        shadow.records[1] = [
            ShadowRecord(
                timestamp=r.timestamp + 1, payload=r.payload, address=r.address
            )
            for r in shadow.records[1]
        ]
        failures = verify_log(log, shadow)
        assert any("seek" in f or "raw_scan" in f for f in failures)

    def test_partial_coverage_index_checked_by_bounds(self, sanitized):
        log = RecordLog(small_config(), clock=VirtualClock())
        log.define_source(1)
        for i in range(50):
            log.push(1, value_payload(float(i)))
            log.clock.advance(1000)
        # Index defined mid-stream: forward-only coverage (section 5.3).
        log.define_index(1, payload_value, HistogramSpec([10.0, 100.0]))
        for i in range(50):
            log.push(1, value_payload(float(i)))
            log.clock.advance(1000)
        log.sync()
        shadow = shadow_of(log)
        index = next(iter(shadow.indexes.values()))
        assert index.birth == 50
        assert verify_log(log, shadow) == []
        log.close()

    def test_shadow_reseeds_across_reopen(self, sanitized, tmp_path):
        config = small_config(data_dir=str(tmp_path))
        clock = VirtualClock()
        log = RecordLog(config, clock=clock)
        log.define_source(1)
        for i in range(30):
            log.push(1, value_payload(float(i)))
            clock.advance(1000)
        log.close()

        reopened = RecordLog.reopen(config)
        shadow = shadow_of(reopened)
        assert shadow is not None and shadow.reseeded
        assert len(shadow.records[1]) == 30
        reopened.define_source(2)
        reopened.push(2, value_payload(7.0))
        reopened.sync()
        assert verify_log(reopened, shadow) == []
        reopened.close()

    def test_install_is_idempotent_and_uninstall_restores(self):
        was_installed = sanitizer.installed()
        sanitizer.install()
        sanitizer.install()
        assert sanitizer.installed()
        log = RecordLog(small_config(), clock=VirtualClock())
        assert shadow_of(log) is not None
        log.close()
        if not was_installed:
            sanitizer.uninstall()
            assert not sanitizer.installed()
            bare = RecordLog(small_config(), clock=VirtualClock())
            assert shadow_of(bare) is None
            bare.close()
