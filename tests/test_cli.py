"""Tests for the CLI front-end (paper §3's dashboard/CLI layer)."""

import numpy as np
import pytest

from repro.daemon import CliError, LoomCli, MonitoringDaemon, parse_duration
from repro.workloads import events, latency_stream


@pytest.fixture(scope="module")
def cli():
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.add_index(
        "syscall", "latency", events.latency_value, [5.0, 20.0, 80.0, 320.0]
    )
    daemon.replay(latency_stream(2000, 10.0, seed=3))
    return LoomCli(daemon), daemon


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10s", 10 * 10**9),
            ("250ms", 250 * 10**6),
            ("5m", 300 * 10**9),
            ("1.5s", 1_500_000_000),
            ("100us", 100_000),
            ("7ns", 7),
            ("2h", 7200 * 10**9),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("text", ["10", "s", "ten-seconds", "-5s", ""])
    def test_invalid(self, text):
        with pytest.raises(CliError):
            parse_duration(text)


class TestCommands:
    def test_sources(self, cli):
        c, daemon = cli
        result = c.execute("sources")
        assert "syscall" in result.text
        assert "latency" in result.text

    def test_count(self, cli):
        c, daemon = cli
        result = c.execute("count syscall last 10s")
        assert result.value == 20_000

    def test_count_partial_window(self, cli):
        c, daemon = cli
        result = c.execute("count syscall last 1s")
        assert 1800 <= result.value <= 2200

    def test_agg_max(self, cli):
        c, daemon = cli
        result = c.execute("agg syscall latency max last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        expected = max(events.latency_value(r.payload) for r in records)
        assert result.value == pytest.approx(expected)

    def test_pct_matches_numpy(self, cli):
        c, daemon = cli
        result = c.execute("pct syscall latency 99 last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        values = [events.latency_value(r.payload) for r in records]
        assert result.value == float(
            np.percentile(values, 99, method="inverted_cdf")
        )

    def test_scan_with_limit(self, cli):
        c, daemon = cli
        result = c.execute("scan syscall last 10s limit 5")
        assert len(result.value) == 5

    def test_where_range(self, cli):
        c, daemon = cli
        result = c.execute("where syscall latency 20..80 last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        expected = sum(
            1 for r in records if 20.0 <= events.latency_value(r.payload) <= 80.0
        )
        assert len(result.value) == expected

    def test_where_open_upper_bound(self, cli):
        c, daemon = cli
        result = c.execute("where syscall latency 320..inf last 10s")
        assert all(
            events.latency_value(r.payload) >= 320.0 for r in result.value
        )


class TestErrors:
    def test_empty(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("")

    def test_unknown_verb(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("frobnicate syscall")

    def test_bad_method(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("agg syscall latency median last 10s")

    def test_missing_last(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("count syscall 10s")

    def test_bad_percentile(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("pct syscall latency banana last 10s")

    def test_bad_range(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("where syscall latency 20-80 last 10s")

    def test_unknown_source_propagates(self, cli):
        c, _ = cli
        from repro.core.errors import LoomError

        with pytest.raises(LoomError):
            c.execute("count nosuch last 10s")
