"""Tests for the CLI front-end (paper §3's dashboard/CLI layer)."""

import numpy as np
import pytest

from repro.daemon import CliError, LoomCli, MonitoringDaemon, parse_duration
from repro.workloads import events, latency_stream


@pytest.fixture(scope="module")
def cli():
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.add_index(
        "syscall", "latency", events.latency_value, [5.0, 20.0, 80.0, 320.0]
    )
    daemon.replay(latency_stream(2000, 10.0, seed=3))
    return LoomCli(daemon), daemon


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10s", 10 * 10**9),
            ("250ms", 250 * 10**6),
            ("5m", 300 * 10**9),
            ("1.5s", 1_500_000_000),
            ("100us", 100_000),
            ("7ns", 7),
            ("2h", 7200 * 10**9),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("text", ["10", "s", "ten-seconds", "-5s", ""])
    def test_invalid(self, text):
        with pytest.raises(CliError):
            parse_duration(text)


class TestCommands:
    def test_sources(self, cli):
        c, daemon = cli
        result = c.execute("sources")
        assert "syscall" in result.text
        assert "latency" in result.text

    def test_count(self, cli):
        c, daemon = cli
        result = c.execute("count syscall last 10s")
        assert result.value == 20_000

    def test_count_partial_window(self, cli):
        c, daemon = cli
        result = c.execute("count syscall last 1s")
        assert 1800 <= result.value <= 2200

    def test_agg_max(self, cli):
        c, daemon = cli
        result = c.execute("agg syscall latency max last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        expected = max(events.latency_value(r.payload) for r in records)
        assert result.value == pytest.approx(expected)

    def test_pct_matches_numpy(self, cli):
        c, daemon = cli
        result = c.execute("pct syscall latency 99 last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        values = [events.latency_value(r.payload) for r in records]
        assert result.value == float(
            np.percentile(values, 99, method="inverted_cdf")
        )

    def test_scan_with_limit(self, cli):
        c, daemon = cli
        result = c.execute("scan syscall last 10s limit 5")
        assert len(result.value) == 5

    def test_where_range(self, cli):
        c, daemon = cli
        result = c.execute("where syscall latency 20..80 last 10s")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, (0, daemon.clock.now()))
        expected = sum(
            1 for r in records if 20.0 <= events.latency_value(r.payload) <= 80.0
        )
        assert len(result.value) == expected

    def test_where_open_upper_bound(self, cli):
        c, daemon = cli
        result = c.execute("where syscall latency 320..inf last 10s")
        assert all(
            events.latency_value(r.payload) >= 320.0 for r in result.value
        )


class TestHealthExitCode:
    """``loom health`` composes with shell conditionals: exit 0 while
    serving, 1 once any component is FAILED, 2 when unreachable."""

    def test_healthy_daemon_exits_zero(self, cli):
        c, _ = cli
        result = c.execute("health")
        assert result.exit_code == 0
        assert "health: healthy" in result.text

    def test_failed_daemon_exits_one(self):
        import struct

        from repro.core.clock import VirtualClock
        from repro.core.config import LoomConfig
        from repro.core.faults import FaultInjectingStorage

        daemon = MonitoringDaemon(
            config=LoomConfig(chunk_size=256, record_block_size=512),
            clock=VirtualClock(1),
        )
        daemon.enable_source("cpu")
        log = daemon.loom.record_log.log
        fault = FaultInjectingStorage(inner=log._storage)
        log._storage = fault
        fault.fail_next_appends(10**6)
        with pytest.raises(Exception):
            for _ in range(500):
                daemon.clock.advance(10)
                daemon.receive("cpu", struct.pack("<d", 1.0))
        result = LoomCli(daemon).execute("health")
        assert result.exit_code == 1
        assert "health: failed" in result.text
        fault.make_reliable()

    def test_main_health_verb_against_live_server(self, capsys):
        from repro.daemon import LoomServer
        from repro.daemon.cli import main

        with LoomServer(port=0) as srv:
            code = main(["health", "--port", str(srv.port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "health: healthy" in out
        assert "shard 0" in out

    def test_main_health_verb_unreachable_exits_two(self, capsys):
        import socket

        from repro.daemon.cli import main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        code = main(["health", "--port", str(free_port), "--deadline", "0.2"])
        assert code == 2
        assert "unreachable" in capsys.readouterr().out


class TestErrors:
    def test_empty(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("")

    def test_unknown_verb(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("frobnicate syscall")

    def test_bad_method(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("agg syscall latency median last 10s")

    def test_missing_last(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("count syscall 10s")

    def test_bad_percentile(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("pct syscall latency banana last 10s")

    def test_bad_range(self, cli):
        c, _ = cli
        with pytest.raises(CliError):
            c.execute("where syscall latency 20-80 last 10s")

    def test_unknown_source_propagates(self, cli):
        c, _ = cli
        from repro.core.errors import LoomError

        with pytest.raises(LoomError):
            c.execute("count nosuch last 10s")
