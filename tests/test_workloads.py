"""Tests for the workload generators: determinism, rates, schemas,
planted ground truth, and sampling behaviour (Figure 3)."""

import numpy as np
import pytest

from repro.core.clock import NANOS_PER_SECOND
from repro.workloads import (
    RedisCaseStudy,
    RocksDbCaseStudy,
    arrival_times,
    events,
    fixed_size_records,
    latency_stream,
    lognormal_latencies,
    merge_streams,
    per_source_sample,
    uniform_sample,
)


class TestGeneratorPrimitives:
    def test_arrival_times_count_is_exact(self):
        rng = np.random.default_rng(0)
        ts = arrival_times(rng, rate_per_s=1000, t_start_ns=0, duration_s=2.0)
        assert len(ts) == 2000

    def test_arrival_times_sorted_and_in_window(self):
        rng = np.random.default_rng(0)
        start = 5 * NANOS_PER_SECOND
        ts = arrival_times(rng, 500, start, 1.0)
        assert list(ts) == sorted(ts)
        assert ts[0] >= start - NANOS_PER_SECOND // 500
        assert ts[-1] <= start + NANOS_PER_SECOND + NANOS_PER_SECOND // 500

    def test_zero_rate(self):
        rng = np.random.default_rng(0)
        assert len(arrival_times(rng, 0, 0, 10.0)) == 0

    def test_lognormal_latencies_positive(self):
        rng = np.random.default_rng(0)
        lats = lognormal_latencies(rng, 1000, median_us=100.0, sigma=0.5)
        assert (lats > 0).all()
        assert 50 < np.median(lats) < 200

    def test_merge_streams_is_time_ordered(self):
        a = [(1, 1, b"a"), (5, 1, b"a"), (9, 1, b"a")]
        b = [(2, 2, b"b"), (3, 2, b"b"), (8, 2, b"b")]
        merged = list(merge_streams([a, b]))
        assert [t for t, _, _ in merged] == [1, 2, 3, 5, 8, 9]

    def test_fixed_size_records(self):
        payloads = fixed_size_records(10, 40)
        assert len(payloads) == 10
        assert all(len(p) == 40 for p in payloads)

    def test_latency_stream_schema(self):
        records = latency_stream(1000, 0.5, kind=events.SYS_PREAD64)
        assert len(records) == 500
        for _, sid, payload in records[:10]:
            assert sid == events.SRC_SYSCALL
            assert events.latency_kind(payload) == events.SYS_PREAD64
            assert events.latency_value(payload) > 0


class TestEventSchemas:
    def test_latency_record_is_48_bytes_on_log(self):
        payload = events.pack_latency(1, 2.0, events.OP_GET)
        assert len(payload) == 24  # + 24-byte Loom header = 48 B (Fig 10)

    def test_pagecache_record_is_60_bytes_on_log(self):
        payload = events.pack_pagecache(events.PC_ADD_TO_PAGE_CACHE, 1, 2, 3)
        assert len(payload) == 36  # + 24-byte header = 60 B

    def test_latency_roundtrip(self):
        payload = events.pack_latency(77, 123.5, events.SYS_SENDTO, flags=3)
        assert events.unpack_latency(payload) == (77, 123.5, events.SYS_SENDTO, 3)
        assert events.latency_value(payload) == 123.5
        assert events.latency_op_id(payload) == 77

    def test_packet_roundtrip_with_capture(self):
        payload = events.pack_packet(1234, events.REDIS_PORT, 1448, 0x18, 99, b"cap")
        src, dst, length, flags, seq, capture = events.unpack_packet(payload)
        assert (src, dst, length, flags, seq, capture) == (
            1234, events.REDIS_PORT, 1448, 0x18, 99, b"cap"
        )
        assert events.packet_dst_port(payload) == float(events.REDIS_PORT)

    def test_pagecache_roundtrip(self):
        payload = events.pack_pagecache(events.PC_WRITEBACK, 10, 20, 30, 40)
        assert events.unpack_pagecache(payload) == (
            events.PC_WRITEBACK, 10, 20, 30, 40
        )


class TestRedisCaseStudy:
    @pytest.fixture(scope="class")
    def workload(self):
        return RedisCaseStudy(scale=5e-4, phase_duration_s=5.0, seed=11)

    def test_determinism(self, workload):
        again = RedisCaseStudy(scale=5e-4, phase_duration_s=5.0, seed=11)
        a = workload.generate_phase(1).records
        b = again.generate_phase(1).records
        assert a == b

    def test_phase_rates_are_additive(self, workload):
        """Figure 10a: each phase adds a source ('+ N' rates)."""
        assert workload.active_rate(1) == 865_000
        assert workload.active_rate(2) == 865_000 + 2_700_000
        assert workload.active_rate(3) == 865_000 + 2_700_000 + 3_500_000

    def test_phase_record_counts_scale(self, workload):
        phase = workload.generate_phase(2)
        expected = (865_000 + 2_700_000) * 5e-4 * 5.0
        assert phase.record_count == pytest.approx(expected, rel=0.02)

    def test_phases_occupy_disjoint_time_windows(self, workload):
        p1 = workload.generate_phase(1)
        p2 = workload.generate_phase(2)
        assert p1.t_end_ns == p2.t_start_ns
        assert max(t for t, _, _ in p1.records) <= p2.t_start_ns

    def test_records_are_time_ordered(self, workload):
        records = workload.generate_phase(3).records
        ts = [t for t, _, _ in records]
        assert ts == sorted(ts)

    def test_needles_planted_in_phase3_only(self, workload):
        assert workload.generate_phase(1).needles == []
        assert workload.generate_phase(2).needles == []
        needles = workload.generate_phase(3).needles
        assert len(needles) == 6

    def test_needle_chain_ordering(self, workload):
        """Each needle: mangled packet -> slow recvfrom -> slow request."""
        for needle in workload.generate_phase(3).needles:
            assert needle.packet_time_ns < needle.syscall_time_ns
            assert needle.syscall_time_ns < needle.request_time_ns

    def test_needles_are_extreme_outliers(self, workload):
        phase = workload.generate_phase(3)
        latencies = [
            events.latency_value(p)
            for _, sid, p in phase.records
            if sid == events.SRC_APP
        ]
        needle_lats = sorted(n.request_latency_us for n in phase.needles)
        background = sorted(latencies)[-len(needle_lats) - 1]
        assert needle_lats[0] > background  # needles dominate the tail

    def test_mangled_packets_exist_and_are_rare(self, workload):
        phase = workload.generate_phase(3)
        mangled = [
            p
            for _, sid, p in phase.records
            if sid == events.SRC_PACKET
            and events.unpack_packet(p)[1] == events.MANGLED_PORT
        ]
        packets = sum(
            1 for _, sid, _ in phase.records if sid == events.SRC_PACKET
        )
        assert len(mangled) == 6
        assert packets > 1000

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            RedisCaseStudy(scale=0)
        with pytest.raises(ValueError):
            RedisCaseStudy(scale=1.5)

    def test_invalid_phase(self, workload):
        with pytest.raises(ValueError):
            workload.generate_phase(4)


class TestRocksDbCaseStudy:
    @pytest.fixture(scope="class")
    def workload(self):
        return RocksDbCaseStudy(scale=5e-4, phase_duration_s=5.0, seed=21)

    def test_truth_matches_generated_data(self, workload):
        phase = workload.generate_phase(2)
        app = [
            events.latency_value(p)
            for _, sid, p in phase.records
            if sid == events.SRC_APP
        ]
        pread = [
            events.latency_value(p)
            for _, sid, p in phase.records
            if sid == events.SRC_SYSCALL
            and events.latency_kind(p) == events.SYS_PREAD64
        ]
        assert phase.truth["app_max_us"] == pytest.approx(max(app))
        assert phase.truth["pread_count"] == len(pread)
        assert phase.truth["pread_max_us"] == pytest.approx(max(pread))

    def test_pread_fraction_near_three_percent(self, workload):
        """Figure 10b: Phase 2 queries aggregate ~3% of all data."""
        phase = workload.generate_phase(2)
        fraction = phase.truth["pread_count"] / phase.record_count
        assert 0.02 < fraction < 0.045

    def test_pagecache_adds_counted(self, workload):
        phase = workload.generate_phase(3)
        adds = sum(
            1
            for _, sid, p in phase.records
            if sid == events.SRC_PAGECACHE
            and events.unpack_pagecache(p)[0] == events.PC_ADD_TO_PAGE_CACHE
        )
        assert adds == phase.truth["pagecache_add_count"]

    def test_pagecache_is_tiny_fraction(self, workload):
        """Phase 3's query touches ~0.5% of the data."""
        phase = workload.generate_phase(3)
        pc = sum(1 for _, sid, _ in phase.records if sid == events.SRC_PAGECACHE)
        assert pc / phase.record_count < 0.01

    def test_rates(self, workload):
        assert workload.active_rate(3) == pytest.approx(7_939_000)


class TestSampling:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            uniform_sample([], 1.5)

    def test_extremes(self):
        records = [(i, 1, b"") for i in range(100)]
        assert uniform_sample(records, 1.0) == records
        assert uniform_sample(records, 0.0) == []

    def test_sampling_keeps_about_fraction(self):
        records = [(i, 1, b"") for i in range(10_000)]
        kept = uniform_sample(records, 0.1, seed=1)
        assert 800 < len(kept) < 1200

    def test_sampling_is_deterministic(self):
        records = [(i, 1, b"") for i in range(1000)]
        assert uniform_sample(records, 0.3, seed=9) == uniform_sample(
            records, 0.3, seed=9
        )

    def test_sampling_misses_rare_events(self):
        """Figure 3's mechanism: 10% sampling of six needles in a large
        stream almost always loses most of them."""
        workload = RedisCaseStudy(scale=5e-4, phase_duration_s=5.0, seed=11)
        phase = workload.generate_phase(3)
        needle_ids = {n.request_op_id for n in phase.needles}
        total_kept = 0
        for seed in range(10):
            kept = uniform_sample(phase.records, 0.1, seed=seed)
            kept_needles = sum(
                1
                for _, sid, p in kept
                if sid == events.SRC_APP
                and events.latency_op_id(p) in needle_ids
            )
            total_kept += kept_needles
        # Expectation is 0.6 needles per trial; across 10 trials ~6 of 60.
        assert total_kept < 20

    def test_biased_per_source_sampling(self):
        records = [(i, 1 + i % 2, b"") for i in range(10_000)]
        kept = per_source_sample(records, {1: 1.0, 2: 0.0}, seed=0)
        assert all(sid == 1 for _, sid, _ in kept)
        assert len(kept) == 5000
