"""Tests for the analysis helpers: stats, composed queries, correlation,
and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_target_bin,
    correlate_windows,
    drill_down,
    format_table,
    merge_histograms,
    nearest_rank_percentile,
    ratio,
    records_above_percentile,
    summarize,
)

from conftest import payload_value


class TestStats:
    def test_nearest_rank_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = list(rng.random(503) * 1000)
        for p in (0.0, 25.0, 50.0, 99.0, 100.0):
            assert nearest_rank_percentile(values, p) == float(
                np.percentile(values, p, method="inverted_cdf")
            )

    def test_nearest_rank_validation(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([], 50.0)
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 101.0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3.0
        assert s["mean"] == 2.0
        assert summarize([])["count"] == 0.0

    def test_merge_histograms(self):
        merged = merge_histograms([{0: 1, 2: 3}, {2: 2, 5: 1}])
        assert merged == {0: 1, 2: 5, 5: 1}

    def test_cdf_target_bin(self):
        counts = {0: 10, 1: 80, 2: 10}
        bin_idx, rank, before = cdf_target_bin(counts, 50.0)
        assert bin_idx == 1
        assert rank == 50
        assert before == 10
        assert cdf_target_bin(counts, 0.0)[0] == 0
        assert cdf_target_bin(counts, 100.0)[0] == 2
        with pytest.raises(ValueError):
            cdf_target_bin({}, 50.0)


class TestComposedQueries:
    def test_records_above_percentile(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        threshold, records = records_above_percentile(
            loom, sid, index_id, (0, timestamps[-1]), 99.0
        )
        expected_threshold = float(
            np.percentile(values, 99.0, method="inverted_cdf")
        )
        assert threshold == expected_threshold
        expected_count = sum(1 for v in values if v >= expected_threshold)
        assert len(records) == expected_count
        assert all(payload_value(r.payload) >= threshold for r in records)

    def test_records_above_percentile_empty_window(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        future = timestamps[-1] + 10**12
        threshold, records = records_above_percentile(
            loom, sid, index_id, (future, future + 1), 99.0
        )
        assert threshold is None
        assert records == []

    def test_correlate_windows_finds_neighbours(self, loom, clock):
        loom.define_source(1)
        loom.define_source(2)
        # Source 2 record exactly 500ns before each source-1 anchor.
        anchor_times = [10_000, 20_000, 30_000]
        for t in anchor_times:
            clock.set(t - 500)
            loom.push(2, b"cause")
            clock.set(t)
            loom.push(1, b"anchor")
        loom.sync()
        anchors = loom.raw_scan(1, (0, clock.now()))
        report = correlate_windows(loom, anchors, 2, 1000, 1000)
        assert report.anchor_count == 3
        assert report.correlated_count == 3
        assert len(report.all_correlates()) == 3

    def test_correlate_windows_predicate_filters(self, loom, clock):
        loom.define_source(1)
        loom.define_source(2)
        clock.set(1000)
        loom.push(2, b"noise")
        clock.set(1100)
        loom.push(1, b"anchor")
        loom.sync()
        anchors = loom.raw_scan(1, (0, clock.now()))
        report = correlate_windows(
            loom, anchors, 2, 1000, 1000, predicate=lambda r: r.payload != b"noise"
        )
        assert report.correlated_count == 0

    def test_drill_down_composes(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        loom.define_source(55)
        threshold, report = drill_down(
            loom, sid, index_id, (0, timestamps[-1]), 99.5, 55, 10_000
        )
        assert threshold is not None
        assert report.anchor_count > 0
        assert report.correlated_count == 0  # source 55 has no records


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            "Fig X", ["name", "value"], [["loom", 1.5], ["fish", 20.25]]
        )
        lines = text.splitlines()
        assert lines[0] == "== Fig X =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_note(self):
        text = format_table("T", ["a"], [[1]], note="simulated")
        assert text.splitlines()[-1] == "note: simulated"

    def test_number_formatting(self):
        text = format_table("T", ["a"], [[123456.0], [0.1234567], [3.14159]])
        assert "123,456" in text
        assert "0.1235" in text
        assert "3.14" in text

    def test_ratio(self):
        assert ratio(10.0, 2.0) == "5.0x"
        assert ratio(1.0, 0.0) == "inf"
