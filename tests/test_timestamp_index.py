"""Tests for the timestamp index (paper §4.2): periodic record entries,
chunk-finalization entries, and time-based seeks."""

import pytest

from repro.core.timestamp_index import (
    KIND_CHUNK,
    KIND_RECORD,
    TimestampIndex,
)


@pytest.fixture
def index() -> TimestampIndex:
    return TimestampIndex(record_interval=4, block_size=256)


class TestRecordEntries:
    def test_first_record_always_noted(self, index):
        assert index.maybe_note_record(1, 100, 0) is True

    def test_interval_thins_entries(self, index):
        noted = [index.maybe_note_record(1, 100 + i, i * 48) for i in range(12)]
        # First record, then every 4th.
        assert noted == [True, False, False, False] * 3
        assert index.entry_count == 3

    def test_intervals_are_per_source(self, index):
        index.maybe_note_record(1, 100, 0)
        assert index.maybe_note_record(2, 101, 48) is True  # source 2's first

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimestampIndex(record_interval=0)


class TestSeeks:
    @pytest.fixture
    def populated(self) -> TimestampIndex:
        idx = TimestampIndex(record_interval=1)
        for i in range(10):
            idx.maybe_note_record(1, 100 * (i + 1), i * 48)  # t = 100..1000
        return idx

    def test_first_record_after(self, populated):
        ts, addr = populated.first_record_after(1, 250)
        assert ts == 300 and addr == 2 * 48

    def test_first_record_after_exact_boundary(self, populated):
        ts, _ = populated.first_record_after(1, 300)
        assert ts == 400  # strictly after

    def test_first_record_after_end(self, populated):
        assert populated.first_record_after(1, 1000) is None

    def test_first_record_after_unknown_source(self, populated):
        assert populated.first_record_after(9, 0) is None

    def test_last_record_before(self, populated):
        ts, addr = populated.last_record_before(1, 550)
        assert ts == 500 and addr == 4 * 48

    def test_last_record_before_start(self, populated):
        assert populated.last_record_before(1, 99) is None

    def test_last_record_before_exact(self, populated):
        ts, _ = populated.last_record_before(1, 500)
        assert ts == 500  # inclusive


class TestChunkEntries:
    @pytest.fixture
    def populated(self) -> TimestampIndex:
        idx = TimestampIndex(record_interval=1)
        # Chunks finalize at t = 100, 200, ..., 1000 with ids 0..9.
        for i in range(10):
            idx.note_chunk(100 * (i + 1), i)
        return idx

    def test_window_inside(self, populated):
        lo, hi = populated.chunk_id_window(350, 650)
        # Chunk finalized at 300 (id 2) may hold records up to t=350's
        # range start; first finalized after 650 is id 6.
        assert lo == 2
        assert hi == 6

    def test_window_covers_everything(self, populated):
        assert populated.chunk_id_window(0, 10**9) == (0, 9)

    def test_window_before_data(self, populated):
        lo, hi = populated.chunk_id_window(0, 50)
        assert (lo, hi) == (0, 0)

    def test_window_after_data(self, populated):
        lo, hi = populated.chunk_id_window(2000, 3000)
        assert lo == 9 and hi == 9  # only the last chunk could reach there

    def test_empty_index_returns_none(self):
        assert TimestampIndex().chunk_id_window(0, 100) is None

    def test_inverted_range_returns_none(self, populated):
        assert populated.chunk_id_window(500, 400) is None


class TestPersistence:
    def test_entries_serialized_in_order(self):
        idx = TimestampIndex(record_interval=1)
        idx.maybe_note_record(3, 111, 0)
        idx.note_chunk(222, 0)
        idx.maybe_note_record(3, 333, 96)
        entries = list(idx.iter_persisted())
        assert entries == [
            (111, KIND_RECORD, 3, 0),
            (222, KIND_CHUNK, 0, 0),
            (333, KIND_RECORD, 3, 96),
        ]
