"""Tests for the FasterLog-style append log."""


from repro.baselines.fasterlog import HEADER_SIZE, AppendLog


class TestAppendLog:
    def test_append_and_read(self):
        log = AppendLog()
        a = log.append(1, 100, b"first")
        b = log.append(2, 200, b"second")
        r = log.read(a)
        assert (r.source_id, r.timestamp, r.payload) == (1, 100, b"first")
        r = log.read(b)
        assert (r.source_id, r.timestamp, r.payload) == (2, 200, b"second")

    def test_addresses_are_byte_offsets(self):
        log = AppendLog()
        a = log.append(1, 0, b"xyz")
        b = log.append(1, 1, b"")
        assert a == 0
        assert b == HEADER_SIZE + 3

    def test_extra_header_bytes_roundtrip(self):
        log = AppendLog()
        a = log.append(1, 5, b"pay", extra=b"\x01\x02\x03\x04")
        r = log.read(a, extra_len=4)
        assert r.extra == b"\x01\x02\x03\x04"
        assert r.payload == b"pay"

    def test_scan_yields_all_records_in_order(self):
        log = AppendLog()
        for i in range(50):
            log.append(i % 3, i, bytes([i]))
        got = [(r.source_id, r.timestamp, r.payload) for r in log.scan()]
        assert got == [(i % 3, i, bytes([i])) for i in range(50)]

    def test_scan_streaming_form(self):
        log = AppendLog()
        for i in range(10):
            log.append(1, i, b"x")
        seen = []
        assert log.scan(func=seen.append) is None
        assert len(seen) == 10

    def test_scan_partial_range(self):
        log = AppendLog()
        addresses = [log.append(1, i, b"abc") for i in range(10)]
        got = list(log.scan(start=addresses[4]))
        assert len(got) == 6
        assert got[0].timestamp == 4

    def test_record_count_and_size(self):
        log = AppendLog()
        for i in range(7):
            log.append(1, i, b"12345678")
        assert log.record_count == 7
        assert log.size_bytes == 7 * (HEADER_SIZE + 8)
