"""Tests for indexed_aggregate (paper §4.3): distributive aggregates from
bin statistics and exact holistic percentiles via the CDF-over-bins walk."""


import numpy as np
import pytest

from repro.core.errors import LoomError
from repro.core.operators import bin_histogram, indexed_aggregate

from conftest import payload_value, value_payload


def in_window(values, timestamps, t_range):
    return [v for v, t in zip(values, timestamps) if t_range[0] <= t <= t_range[1]]


class TestDistributiveAggregates:
    @pytest.mark.parametrize("method", ["count", "sum", "min", "max", "mean"])
    def test_full_range_matches_reference(self, indexed_loom, method):
        loom, sid, index_id, values, timestamps = indexed_loom
        result = loom.indexed_aggregate(sid, index_id, (0, timestamps[-1]), method)
        reference = {
            "count": float(len(values)),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }[method]
        assert result.value == pytest.approx(reference)
        assert result.count == len(values)

    @pytest.mark.parametrize("method", ["count", "sum", "min", "max", "mean"])
    def test_partial_window_matches_reference(self, indexed_loom, method):
        loom, sid, index_id, values, timestamps = indexed_loom
        t_range = (timestamps[333], timestamps[1444])
        subset = in_window(values, timestamps, t_range)
        result = loom.indexed_aggregate(sid, index_id, t_range, method)
        reference = {
            "count": float(len(subset)),
            "sum": sum(subset),
            "min": min(subset),
            "max": max(subset),
            "mean": sum(subset) / len(subset),
        }[method]
        assert result.value == pytest.approx(reference)

    def test_empty_window_returns_none(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        future = timestamps[-1] + 10**12
        result = loom.indexed_aggregate(sid, index_id, (future, future + 1), "max")
        assert result.value is None
        assert result.count == 0

    def test_aggregation_uses_summaries_not_scans(self, indexed_loom):
        """Chunks fully inside the window must be answered from their bin
        statistics (the Figure 13 fast path)."""
        loom, sid, index_id, values, timestamps = indexed_loom
        result = loom.indexed_aggregate(sid, index_id, (0, timestamps[-1]), "max")
        stats = result.stats
        assert stats.summaries_aggregated > 0
        # Only edge chunks and the active region get scanned.
        assert stats.records_scanned < len(values) / 2

    def test_unknown_method_rejected(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        with pytest.raises(LoomError):
            loom.indexed_aggregate(sid, index_id, (0, timestamps[-1]), "median")


class TestPercentiles:
    @pytest.mark.parametrize("percentile", [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0])
    def test_exact_vs_numpy_inverted_cdf(self, indexed_loom, percentile):
        loom, sid, index_id, values, timestamps = indexed_loom
        result = loom.indexed_aggregate(
            sid, index_id, (0, timestamps[-1]), "percentile", percentile=percentile
        )
        expected = float(
            np.percentile(values, percentile, method="inverted_cdf")
        )
        assert result.value == pytest.approx(expected, rel=0, abs=0)

    def test_percentile_partial_window(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        t_range = (timestamps[100], timestamps[1900])
        subset = in_window(values, timestamps, t_range)
        result = loom.indexed_aggregate(
            sid, index_id, t_range, "percentile", percentile=95.0
        )
        expected = float(np.percentile(subset, 95.0, method="inverted_cdf"))
        assert result.value == expected

    def test_percentile_scans_only_target_bin_chunks(self, indexed_loom):
        """The CDF walk must identify one bin and scan only chunks with
        records in it — not every chunk."""
        loom, sid, index_id, values, timestamps = indexed_loom
        result = loom.indexed_aggregate(
            sid, index_id, (0, timestamps[-1]), "percentile", percentile=99.9
        )
        total_chunks = len(loom.record_log.chunk_index)
        assert result.stats.chunks_scanned < total_chunks

    def test_percentile_requires_valid_argument(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        with pytest.raises(LoomError):
            loom.indexed_aggregate(sid, index_id, (0, timestamps[-1]), "percentile")
        with pytest.raises(LoomError):
            loom.indexed_aggregate(
                sid, index_id, (0, timestamps[-1]), "percentile", percentile=101.0
            )

    def test_percentile_empty_window(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        future = timestamps[-1] + 10**12
        result = loom.indexed_aggregate(
            sid, index_id, (future, future + 1), "percentile", percentile=50.0
        )
        assert result.value is None

    def test_single_record(self, loom, clock):
        from repro.core import HistogramSpec

        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([10.0]))
        loom.push(1, value_payload(5.0))
        loom.sync()
        for p in (0.0, 50.0, 100.0):
            result = loom.indexed_aggregate(
                1, index_id, (0, clock.now()), "percentile", percentile=p
            )
            assert result.value == 5.0

    def test_all_values_in_one_bin(self, loom, clock):
        """Degenerate histogram: everything lands in one outlier bin; the
        percentile must still be exact (pure scan of that bin)."""
        from repro.core import HistogramSpec

        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([1e12]))
        values = [float(i) for i in range(100)]
        for v in values:
            loom.push(1, value_payload(v))
            clock.advance(10)
        loom.sync()
        result = loom.indexed_aggregate(
            1, index_id, (0, clock.now()), "percentile", percentile=90.0
        )
        assert result.value == float(
            np.percentile(values, 90.0, method="inverted_cdf")
        )


class TestBinHistogram:
    def test_counts_match_reference(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        snap = loom.snapshot()
        index = loom.record_log.get_index(index_id)
        histogram = bin_histogram(snap, sid, index, 0, timestamps[-1])
        assert sum(histogram.values()) == len(values)
        spec = index.spec
        reference = {}
        for v in values:
            b = spec.bin_of(v)
            reference[b] = reference.get(b, 0) + 1
        assert histogram == reference

    def test_window_restricts_counts(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        snap = loom.snapshot()
        index = loom.record_log.get_index(index_id)
        t_range = (timestamps[100], timestamps[299])
        histogram = bin_histogram(snap, sid, index, t_range[0], t_range[1])
        assert sum(histogram.values()) == 200
