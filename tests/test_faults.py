"""Fault tolerance: flaky backends, torn writes, corruption, health states.

Exercises the acceptance scenarios of the durability layer with
:class:`~repro.core.faults.FaultInjectingStorage`:

* a flaky backend whose every flush fails once is survived transparently
  (retry path; HEALTHY afterwards; no data loss);
* a permanently failing backend drives the log to FAILED — ingest raises
  :class:`StorageError` while queries over published data keep working;
* single-bit corruption in a persisted log is detected with
  :class:`CorruptionError` naming the address, and ``repair=True``
  truncates the log at the first bad frame.
"""

import pytest

from repro.core import (
    CorruptionError,
    Health,
    HybridLog,
    Loom,
    LoomConfig,
    MemoryStorage,
    StorageError,
    VirtualClock,
    corrupt_byte,
    recover,
    verify_frames,
)
from repro.core.faults import FaultInjectingStorage
from repro.core.record import HEADER_SIZE
from repro.core.record_log import RecordLog
from repro.core.recovery import scan_persisted_records
from repro.daemon.cli import LoomCli
from repro.daemon.monitor import MonitoringDaemon

pytestmark = pytest.mark.faults


class TestFaultInjectingStorage:
    def test_transparent_proxy_when_unarmed(self):
        storage = FaultInjectingStorage()
        addr = storage.append(b"hello")
        assert addr == 0
        assert storage.read(0, 5) == b"hello"
        assert storage.size == 5
        assert storage.faults_injected == 0

    def test_fail_once_then_recover(self):
        storage = FaultInjectingStorage().fail_once()
        with pytest.raises(StorageError):
            storage.append(b"x")
        assert storage.append(b"x") == 0  # nothing was persisted by the fault
        assert storage.faults_injected == 1

    def test_flaky_period_two_alternates(self):
        storage = FaultInjectingStorage().make_flaky(period=2)
        results = []
        for _ in range(6):
            try:
                storage.append(b"d")
                results.append("ok")
            except StorageError:
                results.append("fail")
        assert results == ["fail", "ok"] * 3

    def test_torn_write_persists_a_prefix(self):
        storage = FaultInjectingStorage().fail_once().tear_writes(0.5)
        with pytest.raises(StorageError):
            storage.append(b"abcdefgh")
        assert storage.size == 4  # half the data landed
        assert storage.read(0, 4) == b"abcd"

    def test_corrupt_byte_flips_bits(self):
        storage = FaultInjectingStorage()
        storage.append(b"\x00\x00")
        storage.corrupt_byte(1, mask=0xFF)
        assert storage.read(0, 2) == b"\x00\xff"


class TestFlushRetry:
    def test_flaky_backend_survived_transparently(self):
        """Each flush fails on its first attempt; the retry path re-drives
        it and the caller never notices."""
        storage = FaultInjectingStorage().make_flaky(period=2)
        log = HybridLog(storage=storage, block_size=64, flush_backoff=0.0)
        payload = bytes(range(64))
        for i in range(8):
            log.append(payload)
        log.publish()
        assert log.health is Health.HEALTHY
        assert log.stats.flush_retries >= 8
        assert storage.faults_injected >= 8
        # No data loss and no duplicated extents.
        for i in range(8):
            assert log.read(i * 64, 64) == payload

    def test_torn_flush_is_undone_before_retry(self):
        storage = FaultInjectingStorage().make_flaky(period=2).tear_writes(0.5)
        log = HybridLog(storage=storage, block_size=64, flush_backoff=0.0)
        for i in range(8):
            log.append(bytes([i]) * 64)
        log.close()
        assert storage.size == 8 * 64
        for i in range(8):
            assert storage.read(i * 64, 64) == bytes([i]) * 64
        # The frame journal (memory-backed here: none) aside, a recovery
        # scan of the raw storage sees exactly the appended bytes.

    def test_permanent_failure_enters_failed_state(self):
        storage = FaultInjectingStorage()
        log = HybridLog(
            storage=storage, block_size=32, flush_retries=2, flush_backoff=0.0
        )
        log.append(b"a" * 32)  # fills the block; flushed successfully
        log.publish()
        storage.fail_next_appends(100)
        with pytest.raises(StorageError):
            log.append(b"b" * 32)  # rotation flush fails 3 times
        assert log.health is Health.FAILED
        # Every subsequent append raises a *fresh* wrapped error.
        with pytest.raises(StorageError) as exc_info:
            log.append(b"c")
        assert exc_info.value.__cause__ is not None
        # Published data stays readable (graceful read-only degradation).
        assert log.read(0, 32) == b"a" * 32

    def test_degraded_health_reported_mid_retry(self):
        health_seen = []

        class Spy(FaultInjectingStorage):
            def append(self, data):
                health_seen.append(log.health)
                return super().append(data)

        storage = Spy().fail_next_appends(1)
        log = HybridLog(storage=storage, block_size=16, flush_backoff=0.0)
        log.append(b"x" * 16)
        log.append(b"y")
        assert Health.DEGRADED in health_seen  # the retry attempt saw it
        assert log.health is Health.HEALTHY


class TestLoomHealth:
    def _loom_on(self, storage):
        cfg = LoomConfig(chunk_size=256, record_block_size=256)
        clock = VirtualClock(1)
        log = RecordLog(config=cfg, clock=clock)
        # Swap the record log's backend for the fault-injecting one.
        log.log._storage = storage
        loom = Loom.__new__(Loom)
        loom._record_log = log
        return loom, clock

    def test_flaky_loom_stays_healthy_with_no_data_loss(self):
        storage = FaultInjectingStorage().make_flaky(period=2)
        loom, clock = self._loom_on(storage)
        loom.define_source(1)
        for i in range(100):
            clock.advance(10)
            loom.push(1, b"p%04d" % i)
        loom.sync()
        assert loom.health() is Health.HEALTHY
        assert storage.faults_injected > 0
        assert len(loom.raw_scan(1, (0, 10**9))) == 100

    def test_failed_loom_rejects_ingest_but_serves_queries(self):
        storage = FaultInjectingStorage()
        loom, clock = self._loom_on(storage)
        loom.define_source(1)
        for i in range(20):
            clock.advance(10)
            loom.push(1, b"q%04d" % i)
        loom.sync()
        storage.fail_next_appends(10**6)
        with pytest.raises(StorageError):
            for i in range(100):
                clock.advance(10)
                loom.push(1, b"r%04d" % i)
        assert loom.health() is Health.FAILED
        with pytest.raises(StorageError):
            loom.push(1, b"more")
        # Everything published before the failure is still queryable.
        records = loom.raw_scan(1, (0, 10**9))
        assert len(records) >= 20
        assert bytes(records[-1].payload) == b"q0000"


class TestCorruptionDetection:
    def _persisted_log(self, n=50):
        storage = MemoryStorage()
        log = HybridLog(storage=storage, block_size=128)
        journal = MemoryStorage()
        log._journal = journal
        addresses = []
        from repro.core.record import encode_record

        prev = 0xFFFF_FFFF_FFFF_FFFF
        for i in range(n):
            framed = encode_record(1, 1000 + i, prev, b"payload-%02d" % i)
            prev = log.append(framed)
            addresses.append(prev)
        log.close()
        return storage, journal, addresses

    def test_single_bit_corruption_raises_with_address(self):
        storage, _journal, addresses = self._persisted_log()
        victim = addresses[20]
        corrupt_byte(storage, victim + HEADER_SIZE + 2)  # payload byte
        with pytest.raises(CorruptionError) as exc_info:
            list(scan_persisted_records(storage))
        assert exc_info.value.address == victim
        assert str(victim) in str(exc_info.value)

    def test_header_corruption_detected_too(self):
        storage, _journal, addresses = self._persisted_log()
        victim = addresses[7]
        corrupt_byte(storage, victim + 4)  # timestamp byte
        with pytest.raises(CorruptionError) as exc_info:
            recover(storage, verify=True)
        assert exc_info.value.address == victim

    def test_repair_truncates_at_first_bad_frame(self):
        storage, journal, addresses = self._persisted_log()
        victim = addresses[20]
        corrupt_byte(storage, victim + HEADER_SIZE)
        state = recover(storage, repair=True, record_journal=journal)
        assert state.total_records == 20
        assert storage.size == victim
        assert state.repairs  # the action was recorded
        # The surviving prefix is fully valid.
        assert len(list(scan_persisted_records(storage))) == 20

    def test_frame_journal_catches_bit_rot_in_bulk(self):
        storage, journal, addresses = self._persisted_log()
        corrupt_byte(storage, addresses[10])
        with pytest.raises(CorruptionError):
            verify_frames(storage, journal)

    def test_frame_journal_tolerates_unjournaled_tail(self):
        storage, journal, _ = self._persisted_log()
        frames_before = verify_frames(storage, journal)
        storage.append(b"torn-tail-bytes")  # flushed data, journal lost
        assert verify_frames(storage, journal) == frames_before

    def test_verify_on_read_detects_corruption(self, tmp_path):
        cfg = LoomConfig(
            data_dir=str(tmp_path / "d"),
            chunk_size=512,
            record_block_size=512,
            verify_on_read=True,
        )
        clock = VirtualClock(1)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        addresses = []
        for i in range(30):
            clock.advance(10)
            addresses.append(loom.push(1, b"value-%02d" % i))
        loom.sync()
        # Scans work while the data is intact.
        assert len(loom.raw_scan(1, (0, 10**9))) == 30
        victim = addresses[3]  # old enough to be flushed to the file
        assert victim + HEADER_SIZE < loom.record_log.log.persisted_tail
        corrupt_byte(loom.record_log.log.storage, victim + HEADER_SIZE + 1)
        with pytest.raises(CorruptionError) as exc_info:
            loom.record_log.read_record(victim)
        assert exc_info.value.address == victim

    def test_verify_on_read_off_by_default(self, tmp_path):
        cfg = LoomConfig(
            data_dir=str(tmp_path / "d"), chunk_size=512, record_block_size=512
        )
        clock = VirtualClock(1)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        addresses = [loom.push(1, b"value-%02d" % i) for i in range(30)]
        loom.sync()
        victim = addresses[3]
        if victim + HEADER_SIZE < loom.record_log.log.persisted_tail:
            corrupt_byte(loom.record_log.log.storage, victim + HEADER_SIZE + 1)
            loom.record_log.read_record(victim)  # no check, no raise


class TestCliRecovery:
    def _crashed_dir(self, tmp_path):
        cfg = LoomConfig(
            data_dir=str(tmp_path / "d"),
            chunk_size=256,
            record_block_size=256,
            timestamp_interval=4,
        )
        clock = VirtualClock(1)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        for i in range(60):
            clock.advance(10)
            loom.push(1, b"cli-%03d" % i)
        loom.close()
        return cfg

    def test_fsck_reports_clean_directory(self, tmp_path):
        cfg = self._crashed_dir(tmp_path)
        cli = LoomCli(MonitoringDaemon())
        result = cli.execute(f"fsck {cfg.data_dir}")
        assert "60 records" in result.text
        assert result.value.ok
        assert result.value.state.total_records == 60
        assert result.exit_code == 0

    def test_recover_subcommand_repairs_torn_tail(self, tmp_path):
        cfg = self._crashed_dir(tmp_path)
        # Tear the record log mid-record.
        path = cfg.record_log_path()
        import os

        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 5)
        cli = LoomCli(MonitoringDaemon())
        # Read-only check: reports the corruption (no exception), no fix.
        checked = cli.execute(f"fsck {cfg.data_dir}")
        assert not checked.value.ok
        assert checked.exit_code == 1
        assert "corrupt" in checked.text
        result = cli.execute(f"recover {cfg.data_dir}")
        assert result.value.state.total_records == 59
        assert result.value.repairs
        # After repair, fsck is clean and the directory reopens.
        clean = cli.execute(f"fsck {cfg.data_dir}")
        assert clean.value.ok and clean.value.state.total_records == 59
        reopened = Loom.open(cfg)
        assert reopened.total_records == 59
        reopened.close()

    def test_health_verb(self):
        daemon = MonitoringDaemon()
        cli = LoomCli(daemon)
        result = cli.execute("health")
        assert result.text.startswith("health: healthy")
        assert result.value.health is Health.HEALTHY
