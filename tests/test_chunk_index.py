"""Tests for the chunk index log (paper §4.2)."""

import pytest

from repro.core.chunk_index import ChunkIndex
from repro.core.summary import ChunkSummary


def make_summary(chunk_id: int, t_min: int, t_max: int, size: int = 512) -> ChunkSummary:
    summary = ChunkSummary(
        chunk_id=chunk_id, start_addr=chunk_id * size, end_addr=(chunk_id + 1) * size
    )
    summary.add_record(1, t_min, chunk_id * size)
    if t_max != t_min:
        summary.add_record(1, t_max, chunk_id * size + 48)
    return summary


@pytest.fixture
def index() -> ChunkIndex:
    idx = ChunkIndex(block_size=256)
    for i in range(10):
        idx.append(make_summary(i, t_min=i * 100, t_max=i * 100 + 99))
    idx.publish()
    return idx


class TestAppendAndLookup:
    def test_length_and_get(self, index):
        assert len(index) == 10
        assert index.get(0).chunk_id == 0
        assert index.get(9).chunk_id == 9
        assert index.last().chunk_id == 9

    def test_empty_index(self):
        idx = ChunkIndex()
        assert len(idx) == 0
        assert idx.last() is None
        assert list(idx.summaries_in_time_range(0, 10**12)) == []

    def test_summary_for_chunk(self, index):
        assert index.summary_for_chunk(4).chunk_id == 4
        assert index.summary_for_chunk(99) is None

    def test_summary_for_chunk_respects_limit(self, index):
        assert index.summary_for_chunk(8, limit=5) is None
        assert index.summary_for_chunk(3, limit=5).chunk_id == 3


class TestTimeRangeLookup:
    def test_exact_window(self, index):
        got = [s.chunk_id for s in index.summaries_in_time_range(300, 499)]
        assert got == [3, 4]

    def test_partial_overlap_at_edges(self, index):
        got = [s.chunk_id for s in index.summaries_in_time_range(350, 420)]
        assert got == [3, 4]

    def test_window_before_all_data(self, index):
        assert list(index.summaries_in_time_range(-100, -1)) == []

    def test_window_after_all_data(self, index):
        assert list(index.summaries_in_time_range(5000, 6000)) == []

    def test_full_window(self, index):
        got = [s.chunk_id for s in index.summaries_in_time_range(0, 10**9)]
        assert got == list(range(10))

    def test_inverted_window(self, index):
        assert list(index.summaries_in_time_range(500, 400)) == []

    def test_limit_pins_view(self, index):
        got = [s.chunk_id for s in index.summaries_in_time_range(0, 10**9, limit=4)]
        assert got == [0, 1, 2, 3]


class TestPersistence:
    def test_persisted_entries_match_mirror(self, index):
        persisted = list(index.iter_persisted())
        assert len(persisted) == 10
        for mirror_pos, summary in enumerate(persisted):
            mirror = index.get(mirror_pos)
            assert summary.chunk_id == mirror.chunk_id
            assert summary.t_min == mirror.t_min
            assert summary.record_count == mirror.record_count

    def test_index_log_grows_with_appends(self):
        idx = ChunkIndex()
        before = idx.log.tail_address
        idx.append(make_summary(0, 0, 9))
        assert idx.log.tail_address > before
