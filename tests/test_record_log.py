"""Tests for the record log write path (paper §5.4): chains, chunk
finalization, index maintenance, publication ordering, schema ops."""

import pytest

from repro.core import HistogramSpec, LoomConfig
from repro.core.errors import ClosedError, UnknownIndexError, UnknownSourceError
from repro.core.hybridlog import NULL_ADDRESS
from repro.core.record_log import RecordLog

from conftest import payload_value, value_payload


@pytest.fixture
def record_log(small_config, clock) -> RecordLog:
    log = RecordLog(config=small_config, clock=clock)
    yield log
    log.close()


class TestSchemaOperations:
    def test_define_and_push(self, record_log, clock):
        record_log.define_source(1)
        address = record_log.push(1, b"hello")
        record = record_log.read_record(address)
        assert record.payload == b"hello"
        assert record.source_id == 1

    def test_push_to_undefined_source(self, record_log):
        with pytest.raises(UnknownSourceError):
            record_log.push(99, b"x")

    def test_double_define_rejected(self, record_log):
        record_log.define_source(1)
        with pytest.raises(ValueError):
            record_log.define_source(1)

    def test_close_source_stops_ingest_keeps_data(self, record_log):
        record_log.define_source(1)
        address = record_log.push(1, b"kept")
        record_log.close_source(1)
        with pytest.raises(UnknownSourceError):
            record_log.push(1, b"rejected")
        assert record_log.read_record(address).payload == b"kept"

    def test_reopen_closed_source_resumes_chain(self, record_log):
        record_log.define_source(1)
        first = record_log.push(1, b"a")
        record_log.close_source(1)
        record_log.define_source(1)
        second = record_log.push(1, b"b")
        assert record_log.read_record(second).prev_addr == first

    def test_close_unknown_source(self, record_log):
        with pytest.raises(UnknownSourceError):
            record_log.close_source(42)

    def test_define_index_on_unknown_source(self, record_log):
        with pytest.raises(UnknownSourceError):
            record_log.define_index(9, payload_value, HistogramSpec([1.0]))

    def test_close_index(self, record_log):
        record_log.define_source(1)
        index_id = record_log.define_index(1, payload_value, HistogramSpec([1.0]))
        record_log.close_index(index_id)
        with pytest.raises(UnknownIndexError):
            record_log.get_index(index_id)
        with pytest.raises(UnknownIndexError):
            record_log.close_index(index_id)

    def test_close_source_closes_its_indexes(self, record_log):
        record_log.define_source(1)
        index_id = record_log.define_index(1, payload_value, HistogramSpec([1.0]))
        record_log.close_source(1)
        with pytest.raises(UnknownIndexError):
            record_log.get_index(index_id)

    def test_reopened_source_does_not_resurrect_closed_indexes(
        self, record_log
    ):
        """Regression: close_source closes the source's indexes; reopening
        the source via define_source must start with no active indexes and
        must not leave stale ids in ``index_ids`` (a stale id would make
        the write path look up an unregistered index and crash)."""
        record_log.define_source(1)
        index_id = record_log.define_index(1, payload_value, HistogramSpec([1.0]))
        record_log.close_source(1)
        state = record_log.define_source(1)
        assert state.index_ids == []
        with pytest.raises(UnknownIndexError):
            record_log.get_index(index_id)
        # The write path must not touch the closed index.
        record_log.push(1, value_payload(5.0))
        record_log.sync()
        # A fresh index can be defined and gets a new id.
        new_id = record_log.define_index(1, payload_value, HistogramSpec([1.0]))
        assert new_id != index_id
        assert state.index_ids == [new_id]

    def test_index_ids_are_unique(self, record_log):
        record_log.define_source(1)
        record_log.define_source(2)
        a = record_log.define_index(1, payload_value, HistogramSpec([1.0]))
        b = record_log.define_index(2, payload_value, HistogramSpec([1.0]))
        assert a != b


class TestChains:
    def test_back_pointers_link_same_source(self, record_log):
        record_log.define_source(1)
        record_log.define_source(2)
        a1 = record_log.push(1, b"a1")
        b1 = record_log.push(2, b"b1")
        a2 = record_log.push(1, b"a2")
        assert record_log.read_record(a1).prev_addr == NULL_ADDRESS
        assert record_log.read_record(a2).prev_addr == a1
        assert record_log.read_record(b1).prev_addr == NULL_ADDRESS

    def test_timestamps_come_from_clock(self, record_log, clock):
        record_log.define_source(1)
        clock.set(12345)
        address = record_log.push(1, b"x")
        assert record_log.read_record(address).timestamp == 12345

    def test_interleaved_sequential_decode(self, record_log):
        record_log.define_source(1)
        record_log.define_source(2)
        expected = []
        for i in range(50):
            sid = 1 if i % 3 else 2
            record_log.push(sid, bytes([i]))
            expected.append((sid, bytes([i])))
        got = [
            (r.source_id, r.payload)
            for r in record_log.iter_records_between(0, record_log.log.tail_address)
        ]
        assert got == expected


class TestChunking:
    def test_chunks_finalize_as_log_grows(self, record_log):
        record_log.define_source(1)
        # 512-byte chunks, 32-byte records -> 16 records per chunk.
        for i in range(100):
            record_log.push(1, bytes(8))
        record_log.sync()
        assert len(record_log.chunk_index) >= 5

    def test_summaries_tile_the_log(self, record_log):
        record_log.define_source(1)
        for i in range(100):
            record_log.push(1, bytes(8))
        record_log.sync()
        index = record_log.chunk_index
        previous_end = 0
        for pos in range(len(index)):
            summary = index.get(pos)
            assert summary.start_addr == previous_end
            previous_end = summary.end_addr
        # Active region starts exactly at the last summary's end.
        assert record_log.active_region_start(len(index)) == previous_end

    def test_summary_record_counts_total(self, record_log):
        record_log.define_source(1)
        record_log.define_source(2)
        n = 120
        for i in range(n):
            record_log.push(1 + i % 2, bytes(8))
        record_log.sync()
        summarized = sum(
            record_log.chunk_index.get(i).record_count
            for i in range(len(record_log.chunk_index))
        )
        active = sum(
            1
            for _ in record_log.iter_records_between(
                record_log.active_region_start(len(record_log.chunk_index)),
                record_log.log.tail_address,
            )
        )
        assert summarized + active == n

    def test_chunk_timestamps_noted(self, record_log):
        record_log.define_source(1)
        for i in range(100):
            record_log.push(1, bytes(8))
        record_log.sync()
        assert len(record_log.timestamp_index._chunk_ids) == len(
            record_log.chunk_index
        )

    def test_indexed_values_recorded_in_bins(self, record_log, clock):
        record_log.define_source(1)
        index_id = record_log.define_index(
            1, payload_value, HistogramSpec([10.0, 100.0])
        )
        values = [5.0, 50.0, 500.0] * 20
        for value in values:
            record_log.push(1, value_payload(value))
            clock.advance(10)
        record_log.sync()
        counts = {0: 0, 1: 0, 2: 0}
        for pos in range(len(record_log.chunk_index)):
            for bin_idx, stats in (
                record_log.chunk_index.get(pos).bins_for(1, index_id).items()
            ):
                counts[bin_idx] += stats.count
        # All summarized records landed in the right bins (the active chunk
        # holds the remainder).
        assert counts[0] == counts[1] == counts[2]
        assert counts[0] > 0


class TestPublication:
    def test_publish_interval_batches_visibility(self, clock):
        config = LoomConfig(
            chunk_size=512,
            record_block_size=4096,
            publish_interval=10,
        )
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        for _ in range(9):
            log.push(1, b"12345678")
        assert log.log.watermark == 0  # nothing published yet
        log.push(1, b"12345678")
        assert log.log.watermark == log.log.tail_address
        log.close()

    def test_sync_forces_publication(self, clock):
        config = LoomConfig(chunk_size=512, publish_interval=1000)
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        log.push(1, b"abc")
        assert log.log.watermark == 0
        log.sync(1)
        assert log.log.watermark == log.log.tail_address
        log.close()

    def test_sync_unknown_source(self, record_log):
        with pytest.raises(UnknownSourceError):
            record_log.sync(77)

    def test_sync_one_source_publishes_globally(self, clock):
        """Publication is global: the three logs share watermarks, so
        ``sync(source_id)`` makes *every* source's pending records
        queryable, not just the named one (pinned API semantics)."""
        config = LoomConfig(chunk_size=512, publish_interval=1000)
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        log.define_source(2)
        a = log.push(1, b"from-1")
        b = log.push(2, b"from-2")
        assert log.log.watermark == 0
        log.sync(1)  # names source 1 only...
        assert log.log.watermark == log.log.tail_address
        # ...but source 2's record is published too.
        assert log.get_source(2).published_head == b
        assert log.get_source(1).published_head == a
        log.close()

    def test_published_head_lags_until_publish(self, clock):
        config = LoomConfig(chunk_size=512, publish_interval=5)
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        address = log.push(1, b"a")
        state = log.get_source(1)
        assert state.last_addr == address
        assert state.published_head == NULL_ADDRESS
        log.sync()
        assert state.published_head == address
        log.close()


class TestLifecycle:
    def test_push_after_close_raises(self, small_config, clock):
        log = RecordLog(config=small_config, clock=clock)
        log.define_source(1)
        log.close()
        with pytest.raises(ClosedError):
            log.push(1, b"x")

    def test_close_publishes_everything(self, small_config, clock):
        log = RecordLog(config=small_config, clock=clock)
        log.define_source(1)
        for _ in range(10):
            log.push(1, b"payload")
        log.close()
        assert log.log.watermark == log.log.tail_address
