"""Tests for the loomscope metrics registry (repro.core.metrics)."""

import pytest

from repro.core import LATENCY_EDGES_NS, Loom, LoomConfig, VirtualClock
from repro.core.errors import LoomError
from repro.core.histogram import HistogramSpec
from repro.core.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogScope,
    MetricsRegistry,
    dump_live_registries,
)


class TestInstruments:
    def test_counter_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_set_add(self):
        g = Gauge("x")
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0

    def test_histogram_observe_and_snapshot(self):
        spec = HistogramSpec([10.0, 100.0, 1000.0])
        h = Histogram("x", spec)
        for v in (5.0, 50.0, 500.0, 5000.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap.count == 4
        assert snap.sum == 5555.0
        assert snap.min == 5.0 and snap.max == 5000.0
        # One value per bin: low outlier, two interior, high outlier.
        assert snap.bin_counts == (1, 1, 1, 1)
        assert snap.mean == 5555.0 / 4

    def test_histogram_snapshot_empty(self):
        h = Histogram("x", HistogramSpec([1.0]))
        snap = h.snapshot()
        assert snap.count == 0
        assert snap.mean is None

    def test_seqlock_version_even_when_stable(self):
        h = Histogram("x", HistogramSpec([1.0]))
        h.observe(0.5)
        h.observe(2.0)
        assert h._version % 2 == 0
        assert h._version == 4  # two bumps per observe

    def test_sample_window_bounded_and_drained(self):
        h = Histogram("x", HistogramSpec([1.0]), sample_window=4)
        for v in range(10):
            h.observe(float(v))
        drained = h.drain_samples()
        assert drained == [6.0, 7.0, 8.0, 9.0]  # most recent four
        assert h.drain_samples() == []  # single consumer, now empty
        assert h.count == 10  # bin stats keep the full count

    def test_no_sample_window_drains_nothing(self):
        h = Histogram("x", HistogramSpec([1.0]))
        h.observe(0.5)
        assert h.drain_samples() == []


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        a = r.counter("c", labels={"k": "v"})
        b = r.counter("c", labels={"k": "v"})
        assert a is b
        assert r.counter("c", labels={"k": "other"}) is not a

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("m")
        with pytest.raises(LoomError):
            r.gauge("m")

    def test_labels_normalized_order_insensitive(self):
        r = MetricsRegistry()
        a = r.counter("c", labels={"a": "1", "b": "2"})
        b = r.counter("c", labels={"b": "2", "a": "1"})
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_snapshot_values_and_lookup(self):
        clock = VirtualClock(100)
        r = MetricsRegistry(clock=clock)
        r.counter("c", labels={"k": "v"}).inc(7)
        r.gauge("g").set(2.5)
        h = r.histogram("h", HistogramSpec([1.0]))
        h.observe(0.5)
        snap = r.snapshot()
        assert snap.captured_at == 100
        assert snap.value("c", {"k": "v"}) == 7
        assert snap.value("g") == 2.5
        hist = snap.get("h")
        assert hist.kind == "histogram"
        assert hist.histogram.count == 1
        assert snap.get("absent") is None
        assert snap.value("absent") is None

    def test_phase_timer_sets_duration_gauge(self):
        clock = VirtualClock(0)
        r = MetricsRegistry(clock=clock)
        with r.phase("p.ns", labels={"phase": "x"}):
            clock.advance(12345)
        assert r.snapshot().value("p.ns", {"phase": "x"}) == 12345.0

    def test_log_scope_bundle_labelled_by_log_name(self):
        r = MetricsRegistry()
        scope = LogScope(r, "record")
        scope.flushes.inc()
        scope.reader_fallbacks.inc(3)
        snap = r.snapshot()
        assert snap.value("loom.log.flushes_total", {"log": "record"}) == 1
        assert (
            snap.value("loom.log.reader_fallbacks_total", {"log": "record"})
            == 3
        )
        assert tuple(scope.flush_latency.spec.edges) == LATENCY_EDGES_NS

    def test_dump_live_registries_includes_new_registry(self):
        r = MetricsRegistry()
        r.counter("dumpcheck.marker_total").inc()
        text = dump_live_registries()
        assert "dumpcheck_marker_total 1" in text


class TestHotPathInstrumentation:
    def _loom(self, metrics_enabled=True):
        cfg = LoomConfig(
            chunk_size=512,
            record_block_size=2048,
            metrics_enabled=metrics_enabled,
        )
        return Loom(cfg, clock=VirtualClock(1))

    def test_ingest_counters_track_push_and_push_many(self):
        loom = self._loom()
        loom.define_source(1)
        loom.push(1, b"x" * 16)
        loom.push_many(1, [b"y" * 16] * 9)
        snap = loom.metrics.snapshot()
        assert snap.value("loom.ingest.records_total") == 10
        assert snap.value("loom.ingest.bytes_total") == 160
        assert snap.value("loom.ingest.batches_total") == 1
        batch = snap.get("loom.ingest.batch_latency_ns")
        assert batch.histogram.count == 1
        loom.close()

    def test_flush_and_chunk_metrics(self):
        loom = self._loom()
        loom.define_source(1)
        for _ in range(200):
            loom.push(1, b"z" * 24)
        loom.sync()
        loom.close()
        snap = loom.metrics.snapshot()
        assert snap.value("loom.chunks.finalized_total") >= 1
        assert snap.value("loom.log.flushes_total", {"log": "record"}) >= 1
        assert snap.value("loom.log.flushed_bytes_total", {"log": "record"}) > 0
        flush_hist = snap.get(
            "loom.log.flush_latency_ns", {"log": "record"}
        ).histogram
        assert flush_hist.count >= 1

    def test_query_counter_labelled_by_verb(self):
        loom = self._loom()
        loom.define_source(1)
        loom.push(1, b"q" * 8)
        loom.sync()
        loom.scan(1, (0, 10**12))
        loom.scan(1, (0, 10**12))
        snap = loom.metrics.snapshot()
        assert snap.value("loom.query.total", {"verb": "scan"}) == 2
        loom.close()

    def test_metrics_disabled_registers_nothing_on_hot_paths(self):
        loom = self._loom(metrics_enabled=False)
        loom.define_source(1)
        loom.push_many(1, [b"x" * 16] * 50)
        loom.sync()
        loom.scan(1, (0, 10**12))
        snap = loom.metrics.snapshot()
        assert snap.value("loom.ingest.records_total") is None
        assert snap.value("loom.query.total", {"verb": "scan"}) is None
        loom.close()

    def test_introspect_carries_registry_snapshot(self):
        loom = self._loom()
        loom.define_source(1)
        loom.push(1, b"i" * 8)
        info = loom.introspect()
        assert info.total_records == 1
        assert info.metrics.value("loom.ingest.records_total") == 1
        assert info.sources[0].record_count == 1
        loom.close()
