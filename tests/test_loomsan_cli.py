"""End-to-end tests for the ``loomsan`` CLI (tools/loomsan).

Each verb is exercised as a subprocess, pinning the documented exit
codes: 0 success (clean, or --mutant self-test caught the seeded bug,
or a replay reproduced), 1 failure, 2 usage error.
"""

import json
import os
import subprocess
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_loomsan(*args, cwd=None):
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            [_REPO_ROOT, os.path.join(_REPO_ROOT, "src")]
        ),
    )
    return subprocess.run(
        [sys.executable, "-m", "tools.loomsan", *args],
        cwd=str(cwd or _REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
    )


def test_fuzz_mutant_self_test_records_replayable_schedule(tmp_path):
    out_dir = tmp_path / "schedules"
    fuzz = run_loomsan(
        "fuzz",
        "--mutant",
        "--stop-on-failure",
        "--seed",
        "20250806",
        "--out",
        str(out_dir),
    )
    assert fuzz.returncode == 0, fuzz.stdout + fuzz.stderr
    assert "self-test passed" in fuzz.stdout
    recorded = sorted(out_dir.glob("schedule-*.json"))
    assert recorded, "no failing schedule was written"
    payload = json.loads(recorded[0].read_text())
    assert payload["version"] == 1
    assert set(payload) == {"version", "seed", "steps", "trace", "error"}

    replay = run_loomsan("replay", str(recorded[0]), "--mutant")
    assert replay.returncode == 0, replay.stdout + replay.stderr
    assert "identical trace and verdict" in replay.stdout


def test_fuzz_real_block_is_clean():
    proc = run_loomsan("fuzz", "--budget", "50")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "zero findings" in proc.stdout


def test_dfs_mutant_self_test_passes():
    proc = run_loomsan("dfs", "--mutant")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "flagged under DFS" in proc.stdout


def test_shadow_verb_runs_oracles():
    proc = run_loomsan("shadow", "--records", "100")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 divergence(s)" in proc.stdout


def test_usage_errors_exit_2(tmp_path):
    no_verb = run_loomsan()
    assert no_verb.returncode == 2

    missing = run_loomsan("replay", str(tmp_path / "nope.json"))
    assert missing.returncode == 2
