"""Tests for the Figure 15 data-structure cost models."""

import pytest

from repro.simulate import (
    fig15_models,
    fishstore_structure,
    lmdb_structure,
    loom_structure,
    rocksdb_structure,
)
from repro.workloads import FIG15_RECORD_SIZES


class TestModelShape:
    def test_throughput_decreases_with_record_size(self):
        for model in fig15_models():
            curve = [model.throughput(s) for s in FIG15_RECORD_SIZES]
            assert curve == sorted(curve, reverse=True)

    def test_more_cores_never_hurt(self):
        for size in FIG15_RECORD_SIZES:
            assert fishstore_structure(3).throughput(size) >= fishstore_structure(
                1
            ).throughput(size)
            assert rocksdb_structure(8).throughput(size) >= rocksdb_structure(
                1
            ).throughput(size)


class TestPaperAnchors:
    def test_loom_9m_small_records(self):
        """Paper: Loom keeps up with up to 9M records/second on one core."""
        assert loom_structure().throughput(8) == pytest.approx(9.0e6, rel=0.05)

    def test_loom_fastest_at_small_records(self):
        loom = loom_structure()
        for size in (8, 64):
            for other in fig15_models():
                if other.name != loom.name:
                    assert loom.throughput(size) > other.throughput(size)

    def test_fishstore_3cpu_matches_loom_at_256(self):
        loom = loom_structure().throughput(256)
        fs3 = fishstore_structure(3).throughput(256)
        assert abs(fs3 - loom) / loom < 0.05

    def test_1024_byte_ordering(self):
        """Paper: FishStore best (1.4M/s); RocksDB-8cpu (1.1M/s)
        marginally above Loom."""
        loom = loom_structure().throughput(1024)
        fs3 = fishstore_structure(3).throughput(1024)
        rdb8 = rocksdb_structure(8).throughput(1024)
        assert fs3 == pytest.approx(1.4e6, rel=0.1)
        assert rdb8 == pytest.approx(1.1e6, rel=0.1)
        assert fs3 > rdb8 > loom
        assert rdb8 < 1.25 * loom  # "marginally"

    def test_lmdb_never_matches_loom(self):
        loom = loom_structure()
        lmdb = lmdb_structure()
        for size in FIG15_RECORD_SIZES:
            assert lmdb.throughput(size) < loom.throughput(size)

    def test_probe_effect_anchors(self):
        """Paper: RocksDB-8cpu 29%, FishStore-3cpu 19%, Loom 2%."""
        assert rocksdb_structure(8).probe_fraction == pytest.approx(0.29)
        assert fishstore_structure(3).probe_fraction == pytest.approx(0.19)
        assert loom_structure().probe_fraction == pytest.approx(0.02)


class TestRegimes:
    def test_small_records_cpu_bound(self):
        """At 8 B the CPU bound binds, not the disk."""
        from repro.simulate import DISK_BANDWIDTH

        loom = loom_structure()
        disk_bound = DISK_BANDWIDTH / (8 + 24)  # even at full efficiency
        assert loom.throughput(8) < disk_bound

    def test_large_records_disk_bound(self):
        """At 1024 B Loom is bandwidth-limited: doubling its (single)
        core budget would not change throughput."""
        from dataclasses import replace

        loom = loom_structure()
        doubled = replace(loom, cores=2)
        assert doubled.throughput(1024) == loom.throughput(1024)
