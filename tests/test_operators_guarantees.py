"""Cross-cutting guarantee tests: the §4.5 consistency/completeness
contracts exercised through realistic multi-phase usage."""

import numpy as np
import pytest

from repro.core.clock import seconds
from repro.daemon import MonitoringDaemon
from repro.workloads import RedisCaseStudy, events, latency_stream



class TestQueryEquivalence:
    """Every operator path must agree with every other on shared data."""

    @pytest.fixture(scope="class")
    def loaded(self):
        daemon = MonitoringDaemon()
        daemon.enable_source("syscall", events.SRC_SYSCALL)
        daemon.add_index(
            "syscall", "latency", events.latency_value,
            [2.0, 8.0, 32.0, 128.0],
        )
        stream = latency_stream(2000, 8.0, sigma=1.0, seed=77)
        daemon.replay(stream)
        return daemon, stream

    def test_raw_scan_vs_indexed_scan_full_range(self, loaded):
        daemon, stream = loaded
        t_range = (0, daemon.clock.now())
        index_id = daemon.index_id("syscall", "latency")
        raw = daemon.loom.raw_scan(events.SRC_SYSCALL, t_range)
        indexed = daemon.loom.indexed_scan(events.SRC_SYSCALL, index_id, t_range)
        assert {r.address for r in raw} == {r.address for r in indexed}

    def test_aggregate_vs_scan_consistency(self, loaded):
        daemon, stream = loaded
        t_range = (seconds(2), seconds(6))
        index_id = daemon.index_id("syscall", "latency")
        records = daemon.loom.indexed_scan(events.SRC_SYSCALL, index_id, t_range)
        values = [events.latency_value(r.payload) for r in records]
        for method, expected in (
            ("count", float(len(values))),
            ("min", min(values)),
            ("max", max(values)),
            ("sum", sum(values)),
        ):
            result = daemon.loom.indexed_aggregate(
                events.SRC_SYSCALL, index_id, t_range, method
            )
            assert result.value == pytest.approx(expected)

    def test_percentile_vs_full_materialization(self, loaded):
        daemon, stream = loaded
        t_range = (seconds(1), seconds(7))
        index_id = daemon.index_id("syscall", "latency")
        records = daemon.loom.raw_scan(events.SRC_SYSCALL, t_range)
        values = [events.latency_value(r.payload) for r in records]
        for p in (1.0, 25.0, 50.0, 75.0, 99.0, 99.99):
            result = daemon.loom.indexed_aggregate(
                events.SRC_SYSCALL, index_id, t_range, "percentile", percentile=p
            )
            assert result.value == float(
                np.percentile(values, p, method="inverted_cdf")
            )

    def test_adjacent_windows_partition_exactly(self, loaded):
        """Counts over [a, b) + [b, c) must equal the count over [a, c)
        — no double counting or gaps at window boundaries."""
        daemon, stream = loaded
        index_id = daemon.index_id("syscall", "latency")
        a, b, c = seconds(1), seconds(4), seconds(7)
        left = daemon.loom.indexed_aggregate(
            events.SRC_SYSCALL, index_id, (a, b - 1), "count"
        ).value or 0
        right = daemon.loom.indexed_aggregate(
            events.SRC_SYSCALL, index_id, (b, c), "count"
        ).value or 0
        whole = daemon.loom.indexed_aggregate(
            events.SRC_SYSCALL, index_id, (a, c), "count"
        ).value or 0
        assert left + right == whole


class TestEndToEndCompleteness:
    def test_multi_phase_case_study_is_lossless(self):
        """The Figure 11 contract through the full daemon path: every
        generated record is ingested, queryable, and correctly sourced."""
        workload = RedisCaseStudy(scale=2e-4, phase_duration_s=5.0, seed=55)
        daemon = MonitoringDaemon()
        for name, sid in (("app", events.SRC_APP),
                          ("syscall", events.SRC_SYSCALL),
                          ("packet", events.SRC_PACKET)):
            daemon.enable_source(name, sid)
        expected = {}
        total = 0
        for phase in workload.generate_all():
            daemon.replay(phase.records)
            total += phase.record_count
            for _, sid, _ in phase.records:
                expected[sid] = expected.get(sid, 0) + 1
        assert daemon.loom.total_records == total
        t_all = (0, daemon.clock.now())
        for sid, count in expected.items():
            assert len(daemon.loom.raw_scan(sid, t_all)) == count
        daemon.close()
