"""Tests for query snapshots (paper §4.4–4.5): linearization, pinning,
and the consistency guarantee that post-snapshot data is invisible."""


from repro.core import Loom, LoomConfig
from repro.core.hybridlog import NULL_ADDRESS
from repro.core.snapshot import Snapshot

from conftest import payload_value, value_payload


class TestSnapshotCapture:
    def test_snapshot_pins_watermark(self, loom, clock):
        loom.define_source(1)
        for i in range(20):
            loom.push(1, value_payload(float(i)))
            clock.advance(100)
        loom.sync()
        snap = loom.snapshot()
        before = snap.watermark
        loom.push(1, value_payload(99.0))
        loom.sync()
        assert snap.watermark == before
        assert loom.snapshot().watermark > before

    def test_data_after_snapshot_is_invisible(self, loom, clock):
        """Section 4.5: all data that arrived before the snapshot is
        included; data arriving afterwards is not."""
        loom.define_source(1)
        for i in range(10):
            loom.push(1, value_payload(float(i)))
            clock.advance(100)
        loom.sync()
        snap = loom.snapshot()
        for i in range(10, 20):
            loom.push(1, value_payload(float(i)))
            clock.advance(100)
        loom.sync()
        t_range = (0, clock.now())
        old_view = loom.raw_scan(1, t_range, snapshot=snap)
        live_view = loom.raw_scan(1, t_range)
        assert len(old_view) == 10
        assert len(live_view) == 20

    def test_chain_head_respects_watermark(self, clock):
        config = LoomConfig(chunk_size=512, publish_interval=100)
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        loom.push(1, b"unpublished")
        snap = loom.snapshot()
        assert snap.chain_head(1) == NULL_ADDRESS
        loom.sync()
        assert loom.snapshot().chain_head(1) == 0
        loom.close()

    def test_unknown_source_chain_head_is_null(self, loom):
        loom.define_source(1)
        snap = loom.snapshot()
        assert snap.chain_head(777) == NULL_ADDRESS

    def test_snapshot_pins_chunk_count(self, loom, clock):
        loom.define_source(1)
        for i in range(200):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        snap = loom.snapshot()
        pinned = snap.n_chunks
        for i in range(200):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        assert snap.n_chunks == pinned
        assert loom.snapshot().n_chunks > pinned

    def test_summaries_below_watermark_only(self, clock):
        """A summary whose chunk data reaches past the watermark must not
        be pinned (publication-order safety)."""
        config = LoomConfig(chunk_size=256, publish_interval=1)
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        for i in range(100):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        snap = loom.snapshot()
        for pos in range(snap.n_chunks):
            assert loom.record_log.chunk_index.get(pos).end_addr <= snap.watermark
        loom.close()


class TestSnapshotIteration:
    def test_iter_chain_newest_first(self, loom, clock):
        loom.define_source(1)
        for i in range(5):
            loom.push(1, value_payload(float(i)))
            clock.advance(100)
        loom.sync()
        snap = loom.snapshot()
        values = [payload_value(r.payload) for r in snap.iter_chain(1)]
        assert values == [4.0, 3.0, 2.0, 1.0, 0.0]

    def test_iter_chain_with_hint_skips_newer(self, loom, clock):
        loom.define_source(1)
        addresses = []
        for i in range(5):
            addresses.append(loom.push(1, value_payload(float(i))))
            clock.advance(100)
        loom.sync()
        snap = loom.snapshot()
        values = [
            payload_value(r.payload) for r in snap.iter_chain(1, start=addresses[2])
        ]
        assert values == [2.0, 1.0, 0.0]

    def test_iter_region_clamps_to_watermark(self, clock):
        config = LoomConfig(chunk_size=512, publish_interval=3)
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        for i in range(3):
            loom.push(1, value_payload(float(i)))
        snap = loom.snapshot()
        loom.push(1, value_payload(99.0))  # beyond snapshot watermark
        records = list(snap.iter_region(0, loom.record_log.log.tail_address))
        assert len(records) == 3
        loom.close()

    def test_active_region_bounds(self, loom, clock):
        loom.define_source(1)
        for i in range(100):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        snap = loom.snapshot()
        start, end = snap.active_region()
        assert start <= end == snap.watermark
        if snap.n_chunks:
            assert start == loom.record_log.chunk_index.get(snap.n_chunks - 1).end_addr
