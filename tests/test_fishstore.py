"""Tests for the FishStore-style PSF store: subset chains, exact-match
lookups, and the full-scan fallback the paper critiques."""

import struct

import pytest

from repro.baselines.fishstore import (
    FishStore,
    field_equals,
    field_threshold,
    source_equals,
)

VALUE = struct.Struct("<d")


def payload(value: float) -> bytes:
    return VALUE.pack(value)


def value_of(record_payload: bytes) -> float:
    return VALUE.unpack_from(record_payload)[0]


class TestPsfRegistration:
    def test_register_returns_sequential_ids(self):
        store = FishStore(max_psfs=2)
        assert store.register_psf("a", source_equals(1)) == 0
        assert store.register_psf("b", source_equals(2)) == 1

    def test_slot_limit_enforced(self):
        store = FishStore(max_psfs=1)
        store.register_psf("a", source_equals(1))
        with pytest.raises(ValueError):
            store.register_psf("b", source_equals(2))

    def test_every_record_pays_psf_evaluations(self):
        """The write-path cost that grows with installed PSFs (Figure 14)."""
        store = FishStore(max_psfs=3)
        for name in ("a", "b", "c"):
            store.register_psf(name, source_equals(1))
        for i in range(10):
            store.append(1, i, payload(1.0))
        assert store.stats.psf_evaluations == 30


class TestSubsetChains:
    def test_psf_scan_returns_only_matching_records(self):
        store = FishStore(max_psfs=2)
        hot = store.register_psf(
            "hot", field_threshold(value_of, 50.0, source_id=1)
        )
        expected = 0
        for i in range(200):
            v = float(i % 100)
            if i % 2 == 0:
                if v >= 50.0:
                    expected += 1
                store.append(1, i, payload(v))
            else:
                store.append(2, i, payload(v))
        got = list(store.psf_scan(hot, 1))
        assert len(got) == expected
        assert all(value_of(r.payload) >= 50.0 for r in got)
        assert all(r.source_id == 1 for r in got)

    def test_chain_is_newest_first(self):
        store = FishStore(max_psfs=1)
        psf = store.register_psf("all1", source_equals(1))
        for i in range(10):
            store.append(1, i * 100, payload(float(i)))
        timestamps = [r.timestamp for r in store.psf_scan(psf, 1)]
        assert timestamps == sorted(timestamps, reverse=True)

    def test_time_filtered_chain_scan_stops_at_range_start(self):
        store = FishStore(max_psfs=1)
        psf = store.register_psf("all1", source_equals(1))
        for i in range(100):
            store.append(1, i * 100, payload(float(i)))
        store.stats.records_scanned = 0
        got = list(store.psf_scan(psf, 1, t_start=5000, t_end=6000))
        assert len(got) == 11
        # Walks everything newer than t_start plus one (the break record) —
        # the lookback-proportional cost of Figure 17.
        assert store.stats.records_scanned == (100 - 50) + 1

    def test_grouping_psf(self):
        store = FishStore(max_psfs=1)
        by_kind = store.register_psf(
            "kind", field_equals(lambda p: int(value_of(p)) % 3, source_id=1)
        )
        for i in range(30):
            store.append(1, i, payload(float(i)))
        for k in range(3):
            got = list(store.psf_scan(by_kind, k))
            assert len(got) == 10

    def test_unmatched_key_yields_nothing(self):
        store = FishStore(max_psfs=1)
        psf = store.register_psf("all1", source_equals(1))
        store.append(2, 0, payload(1.0))  # does not match
        assert list(store.psf_scan(psf, 1)) == []

    def test_psf_installed_midstream_only_indexes_new_data(self):
        store = FishStore(max_psfs=1)
        for i in range(10):
            store.append(1, i, payload(float(i)))
        psf = store.register_psf("all1", source_equals(1))
        for i in range(10, 15):
            store.append(1, i, payload(float(i)))
        got = list(store.psf_scan(psf, 1))
        assert len(got) == 5  # pre-install records unreachable via the chain


class TestFullScanFallback:
    def test_full_scan_touches_every_record(self):
        """Unindexable queries (arbitrary ranges, percentiles) must scan
        the whole interleaved log — the cost Figures 12/13 show."""
        store = FishStore(max_psfs=0)
        for i in range(300):
            store.append(1 + i % 3, i, payload(float(i)))
        store.stats.records_scanned = 0
        got = list(store.full_scan(predicate=lambda r: r.source_id == 2))
        assert len(got) == 100
        assert store.stats.records_scanned == 300

    def test_source_scan_time_window(self):
        store = FishStore(max_psfs=0)
        for i in range(100):
            store.append(1, i * 10, payload(float(i)))
        got = list(store.source_scan(1, t_start=200, t_end=400))
        assert [r.timestamp for r in got] == [t for t in range(200, 401, 10)]

    def test_no_data_dropped(self):
        """FishStore keeps up with ingest: Figure 11's 0% column."""
        store = FishStore(max_psfs=1)
        store.register_psf("all1", source_equals(1))
        n = 5000
        for i in range(n):
            store.append(1, i, payload(float(i)))
        assert store.record_count == n
        assert sum(1 for _ in store.full_scan()) == n
