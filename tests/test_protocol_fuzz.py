"""Fuzz tests for the wire-protocol decode paths (hypothesis).

The decoders in :mod:`repro.daemon.protocol` face attacker-controlled
bytes: every frame arrives off a socket, and every header field is
whatever JSON the peer chose to send.  The contract under fuzzing is:

* a malformed input raises :class:`TransportError` — never a bare
  ValueError/TypeError/struct.error escaping from a comprehension, and
  never a hang;
* an announced length is validated *before* allocation, so a hostile
  4 GiB length prefix is rejected without the decoder ever asking the
  stream for the body;
* well-formed frames round-trip exactly (truncation/bit-flips may also
  decode to a *different* valid frame — framing has no checksum by
  design; the tests only demand typed failure or a structurally valid
  result, not detection).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TransportError
from repro.core.operators import QueryResult, QueryStats
from repro.core.record import Record
from repro.daemon.protocol import (
    LEN_PREFIX,
    MAX_FRAME_BYTES,
    encode_frame,
    pack_payloads,
    pack_records,
    read_frame,
    result_from_wire,
    split_frame,
    stats_from_wire,
    unpack_payloads,
    unpack_records,
)

# JSON values as a peer could send them (bounded for speed).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
json_headers = st.dictionaries(st.text(max_size=12), json_values, max_size=6)


# ----------------------------------------------------------------------
# split_frame / read_frame
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(payload=st.binary(max_size=256))
def test_split_frame_total_on_arbitrary_bytes(payload):
    try:
        header, body = split_frame(payload)
    except TransportError:
        return
    assert isinstance(header, dict)
    assert isinstance(body, bytes)


@settings(max_examples=100, deadline=None)
@given(
    header=json_headers,
    body=st.binary(max_size=64),
    cut=st.integers(min_value=0, max_value=400),
)
def test_truncated_frame_is_typed_error_or_valid(header, body, cut):
    frame = encode_frame(header, body)
    payload = frame[LEN_PREFIX.size:]
    truncated = payload[: min(cut, len(payload))]
    if truncated == payload:
        got_header, got_body = split_frame(truncated)
        assert got_body == body
        assert got_header == json.loads(json.dumps(header))
        return
    try:
        got_header, got_body = split_frame(truncated)
    except TransportError:
        return
    assert isinstance(got_header, dict)


@settings(max_examples=150, deadline=None)
@given(
    header=json_headers,
    body=st.binary(max_size=64),
    data=st.data(),
)
def test_bit_flipped_frame_is_typed_error_or_valid(header, body, data):
    frame = bytearray(encode_frame(header, body)[LEN_PREFIX.size:])
    pos = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    frame[pos] ^= 1 << bit
    try:
        got_header, got_body = split_frame(bytes(frame))
    except TransportError:
        return
    assert isinstance(got_header, dict)
    assert isinstance(got_body, bytes)


@settings(max_examples=50, deadline=None)
@given(announced=st.integers(min_value=MAX_FRAME_BYTES + 1, max_value=2**32 - 1))
def test_oversized_announcement_rejected_before_allocation(announced):
    reads = []

    def read_exact(n):
        reads.append(n)
        assert n <= LEN_PREFIX.size, "decoder allocated for a hostile length"
        return LEN_PREFIX.pack(announced)

    with pytest.raises(TransportError):
        read_frame(read_exact)
    assert reads == [LEN_PREFIX.size]


def test_torn_length_prefix_is_typed_error():
    with pytest.raises(TransportError):
        read_frame(lambda n: b"\x00")  # short read, no TransportError raised


# ----------------------------------------------------------------------
# Ingest bodies
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(sizes=st.lists(json_values, max_size=8), body=st.binary(max_size=128))
def test_unpack_payloads_total_on_hostile_sizes(sizes, body):
    try:
        payloads = unpack_payloads(sizes, body)
    except TransportError:
        return
    assert b"".join(payloads) == body


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(st.binary(max_size=32), max_size=8))
def test_payloads_round_trip(payloads):
    sizes, body = pack_payloads(payloads)
    assert unpack_payloads(sizes, body) == payloads


# ----------------------------------------------------------------------
# Scan bodies
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(body=st.binary(max_size=256))
def test_unpack_records_total_on_arbitrary_bytes(body):
    try:
        records = unpack_records(body)
    except TransportError:
        return
    assert all(isinstance(r, Record) for r in records)


@settings(max_examples=100, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**64 - 1),  # timestamp
            st.integers(min_value=0, max_value=2**64 - 1),  # address
            st.binary(max_size=32),
        ),
        max_size=6,
    )
)
def test_records_round_trip(entries):
    records = [
        Record(source_id=0, timestamp=t, prev_addr=0, payload=p, address=a)
        for t, a, p in entries
    ]
    out = unpack_records(pack_records(records))
    assert [(r.timestamp, r.address, bytes(r.payload)) for r in out] == [
        (t, a, p) for t, a, p in entries
    ]


# ----------------------------------------------------------------------
# QueryResult / QueryStats decoding
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(header=json_headers, body=st.binary(max_size=128))
def test_result_from_wire_total_on_hostile_headers(header, body):
    try:
        result = result_from_wire(header, body)
    except TransportError:
        return
    assert isinstance(result, QueryResult)
    assert isinstance(result.count, int)
    if result.value is not None:
        assert isinstance(result.value, float)
    if result.bins is not None:
        assert all(
            isinstance(k, int) and isinstance(v, int)
            for k, v in result.bins.items()
        )
    if result.values is not None:
        assert all(isinstance(v, float) for v in result.values)


@settings(max_examples=200, deadline=None)
@given(raw=json_values)
def test_stats_from_wire_never_type_confused(raw):
    stats = stats_from_wire(raw)
    reference = QueryStats()
    for key, ref_value in vars(reference).items():
        value = getattr(stats, key)
        if isinstance(ref_value, bool):
            assert isinstance(value, bool)
        elif isinstance(ref_value, (int, float)):
            assert isinstance(value, (int, float))
            assert not isinstance(value, bool)
        elif isinstance(ref_value, list):
            assert isinstance(value, list)
            assert all(isinstance(item, str) for item in value)
        else:
            assert isinstance(value, type(ref_value))


def test_malformed_fields_raise_transport_error():
    cases = [
        {"count": "not-a-number"},
        {"count": None},
        {"count": []},
        {"count": True},
        {"value": "nope"},
        {"value": {}},
        {"bins": {"x": 1}},
        {"bins": {"1": "y"}},
        {"bins": {"1": None}},
        {"values": [1.0, "two"]},
        {"values": [None]},
        {"records": "three"},
        {"records": 2},  # body holds zero records
    ]
    for header in cases:
        with pytest.raises(TransportError):
            result_from_wire(header, b"")


def test_sizes_reject_non_integers():
    for sizes in ([None], ["4"], [1.5], [True], [[1]]):
        with pytest.raises(TransportError):
            unpack_payloads(sizes, b"abcd")
