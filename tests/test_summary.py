"""Tests for chunk summaries and their serialization (paper Figure 8)."""

import pytest

from repro.core.summary import BinStats, ChunkSummary


class TestBinStats:
    def test_update_tracks_extremes_and_times(self):
        stats = BinStats()
        stats.update(5.0, 100)
        stats.update(2.0, 200)
        stats.update(9.0, 300)
        assert stats.count == 3
        assert stats.sum == 16.0
        assert stats.min == 2.0
        assert stats.max == 9.0
        assert (stats.t_min, stats.t_max) == (100, 300)

    def test_merge_into_empty(self):
        a, b = BinStats(), BinStats()
        b.update(4.0, 50)
        b.update(6.0, 60)
        a.merge(b)
        assert a.count == 2
        assert a.min == 4.0 and a.max == 6.0
        assert (a.t_min, a.t_max) == (50, 60)

    def test_merge_combines(self):
        a, b = BinStats(), BinStats()
        a.update(1.0, 10)
        b.update(100.0, 5)
        a.merge(b)
        assert a.count == 2
        assert a.sum == 101.0
        assert (a.min, a.max) == (1.0, 100.0)
        assert (a.t_min, a.t_max) == (5, 10)

    def test_merge_empty_is_noop(self):
        a = BinStats()
        a.update(3.0, 30)
        before = (a.count, a.sum, a.min, a.max, a.t_min, a.t_max)
        a.merge(BinStats())
        assert (a.count, a.sum, a.min, a.max, a.t_min, a.t_max) == before


class TestChunkSummaryMaintenance:
    def test_add_record_tracks_sources(self):
        summary = ChunkSummary(chunk_id=0, start_addr=0, end_addr=0)
        summary.add_record(1, 100, 0)
        summary.add_record(2, 150, 48)
        summary.add_record(1, 200, 96)
        assert summary.record_count == 3
        assert (summary.t_min, summary.t_max) == (100, 200)
        info = summary.source_info(1)
        assert info.record_count == 2
        assert info.last_record_addr == 96
        assert (info.t_min, info.t_max) == (100, 200)
        assert summary.source_info(3) is None

    def test_add_indexed_value(self):
        summary = ChunkSummary(chunk_id=0, start_addr=0, end_addr=0)
        summary.add_indexed_value(1, 10, 2, 42.0, 100)
        summary.add_indexed_value(1, 10, 2, 44.0, 110)
        summary.add_indexed_value(1, 10, 0, 1.0, 120)
        bins = summary.bins_for(1, 10)
        assert bins[2].count == 2
        assert bins[2].sum == 86.0
        assert bins[0].count == 1
        assert summary.bins_for(9, 9) == {}

    def test_time_overlap_predicates(self):
        summary = ChunkSummary(chunk_id=0, start_addr=0, end_addr=0)
        summary.add_record(1, 100, 0)
        summary.add_record(1, 200, 48)
        assert summary.overlaps_time(150, 250)
        assert summary.overlaps_time(200, 300)
        assert not summary.overlaps_time(201, 300)
        assert not summary.overlaps_time(0, 99)
        assert summary.fully_inside_time(100, 200)
        assert summary.fully_inside_time(50, 250)
        assert not summary.fully_inside_time(101, 200)

    def test_empty_summary_never_overlaps(self):
        summary = ChunkSummary(chunk_id=0, start_addr=0, end_addr=0)
        assert not summary.overlaps_time(0, 10**18)
        assert not summary.fully_inside_time(0, 10**18)


class TestSerialization:
    def _populated(self) -> ChunkSummary:
        summary = ChunkSummary(chunk_id=3, start_addr=1536, end_addr=2048)
        summary.add_record(1, 100, 1536)
        summary.add_record(2, 110, 1584)
        summary.add_record(1, 120, 1632)
        summary.add_indexed_value(1, 5, 0, 3.5, 100)
        summary.add_indexed_value(1, 5, 2, 77.0, 120)
        summary.add_indexed_value(2, 6, 1, 12.0, 110)
        return summary

    def test_roundtrip(self):
        original = self._populated()
        decoded = ChunkSummary.decode(original.encode())
        assert decoded.chunk_id == original.chunk_id
        assert decoded.start_addr == original.start_addr
        assert decoded.end_addr == original.end_addr
        assert decoded.record_count == original.record_count
        assert (decoded.t_min, decoded.t_max) == (original.t_min, original.t_max)
        assert set(decoded.sources) == set(original.sources)
        for sid, info in original.sources.items():
            got = decoded.sources[sid]
            assert (got.record_count, got.t_min, got.t_max, got.last_record_addr) == (
                info.record_count, info.t_min, info.t_max, info.last_record_addr
            )
        assert set(decoded.bins) == set(original.bins)
        for key, per_bin in original.bins.items():
            for bin_idx, stats in per_bin.items():
                got = decoded.bins[key][bin_idx]
                assert got.count == stats.count
                assert got.sum == pytest.approx(stats.sum)
                assert got.min == stats.min
                assert got.max == stats.max

    def test_encoded_size_matches(self):
        summary = self._populated()
        assert len(summary.encode()) == summary.encoded_size

    def test_empty_summary_roundtrip(self):
        summary = ChunkSummary(chunk_id=0, start_addr=0, end_addr=512)
        decoded = ChunkSummary.decode(summary.encode())
        assert decoded.record_count == 0
        assert decoded.sources == {}
        assert decoded.bins == {}
