"""Tests for the scan operators (paper §4.3): raw_scan and indexed_scan
against naive reference implementations."""

import pytest

from repro.core import QueryStats
from repro.core.operators import indexed_scan, raw_scan

from conftest import payload_value


def reference_filter(values, timestamps, t_range, v_range=None):
    """Naive (index-free) reference: which (value, ts) pairs qualify."""
    out = []
    for value, ts in zip(values, timestamps):
        if not t_range[0] <= ts <= t_range[1]:
            continue
        if v_range is not None and not v_range[0] <= value <= v_range[1]:
            continue
        out.append((value, ts))
    return out


class TestRawScan:
    def test_full_range_returns_everything_newest_first(self, indexed_loom):
        loom, sid, _, values, timestamps = indexed_loom
        records = loom.raw_scan(sid, (0, timestamps[-1]))
        assert len(records) == len(values)
        got = [payload_value(r.payload) for r in records]
        assert got == list(reversed(values))

    def test_time_window(self, indexed_loom):
        loom, sid, _, values, timestamps = indexed_loom
        t_range = (timestamps[500], timestamps[700])
        records = loom.raw_scan(sid, t_range)
        expected = reference_filter(values, timestamps, t_range)
        assert len(records) == len(expected) == 201

    def test_empty_window(self, indexed_loom):
        loom, sid, _, _, timestamps = indexed_loom
        between = timestamps[10] + 1  # no record exactly here
        assert loom.raw_scan(sid, (between, between)) == []

    def test_inverted_window(self, indexed_loom):
        loom, sid, _, _, timestamps = indexed_loom
        assert loom.raw_scan(sid, (timestamps[700], timestamps[500])) == []

    def test_window_in_future(self, indexed_loom):
        loom, sid, _, _, timestamps = indexed_loom
        future = timestamps[-1] + 10**12
        assert loom.raw_scan(sid, (future, future + 1000)) == []

    def test_func_form_streams(self, indexed_loom):
        loom, sid, _, values, timestamps = indexed_loom
        seen = []
        result = loom.raw_scan(
            sid, (0, timestamps[-1]), func=lambda r: seen.append(r)
        )
        assert result is None
        assert len(seen) == len(values)

    def test_time_index_bounds_scanning(self, indexed_loom):
        """The timestamp index must let a recent-window scan avoid walking
        the whole history (this is Figure 16's 'time index' effect)."""
        loom, sid, _, values, timestamps = indexed_loom
        t_range = (timestamps[-50], timestamps[-1])
        with_index = QueryStats()
        loom.raw_scan(sid, t_range, stats=with_index)
        # Old-window query: without the index hint, it starts at the tail.
        t_old = (timestamps[0], timestamps[50])
        old_stats = QueryStats()
        snap = loom.snapshot()
        list(raw_scan(snap, sid, t_old[0], t_old[1], stats=old_stats))
        no_index = QueryStats()
        list(
            raw_scan(
                snap, sid, t_old[0], t_old[1], stats=no_index, use_time_index=False
            )
        )
        assert old_stats.records_scanned < no_index.records_scanned
        assert no_index.records_scanned >= len(values) - 51


class TestIndexedScan:
    @pytest.mark.parametrize(
        "v_range",
        [(10.0, 100.0), (0.0, 1.0), (1000.0, float("inf")), (20.0, 20.0)],
    )
    def test_matches_reference(self, indexed_loom, v_range):
        loom, sid, index_id, values, timestamps = indexed_loom
        t_range = (timestamps[300], timestamps[1500])
        records = loom.indexed_scan(sid, index_id, t_range, v_range)
        expected = reference_filter(values, timestamps, t_range, v_range)
        got = sorted(payload_value(r.payload) for r in records)
        assert got == sorted(v for v, _ in expected)

    def test_results_in_arrival_order(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        records = loom.indexed_scan(
            sid, index_id, (0, timestamps[-1]), (0.0, float("inf"))
        )
        addresses = [r.address for r in records]
        assert addresses == sorted(addresses)
        assert len(records) == len(values)

    def test_includes_active_chunk_data(self, indexed_loom, clock):
        """Recent records not yet covered by a finalized summary must still
        be found (the paper's unindexed in-memory scan)."""
        loom, sid, index_id, values, timestamps = indexed_loom
        from conftest import value_payload

        loom.push(sid, value_payload(7777.0))
        loom.sync()
        records = loom.indexed_scan(
            sid, index_id, (0, clock.now()), (7777.0, 7777.0)
        )
        assert len(records) == 1

    def test_skips_chunks_via_bins(self, indexed_loom):
        """Chunks with no records in the queried bins are never scanned —
        the zone-map effect that Figure 16's chunk index provides."""
        loom, sid, index_id, values, timestamps = indexed_loom
        t_range = (0, timestamps[-1])
        # Rare high values: most chunks should be skipped.
        rare = [v for v in values if v >= 1000.0]
        stats = QueryStats()
        records = loom.indexed_scan(
            sid, index_id, t_range, (1000.0, float("inf")), stats=stats
        )
        assert len(records) == len(rare)
        assert stats.chunks_skipped > stats.chunks_scanned
        assert stats.records_scanned < len(values)

    def test_no_chunk_index_scans_everything_in_window(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        snap = loom.snapshot()
        index = loom.record_log.get_index(index_id)
        with_idx, without_idx = QueryStats(), QueryStats()
        a = list(
            indexed_scan(
                snap, sid, index, 0, timestamps[-1], 1000.0, float("inf"),
                stats=with_idx,
            )
        )
        b = list(
            indexed_scan(
                snap, sid, index, 0, timestamps[-1], 1000.0, float("inf"),
                stats=without_idx, use_chunk_index=False,
            )
        )
        assert [r.address for r in a] == [r.address for r in b]
        assert without_idx.records_scanned > with_idx.records_scanned

    def test_wrong_source_for_index_rejected(self, indexed_loom):
        loom, sid, index_id, _, timestamps = indexed_loom
        loom.define_source(99)
        from repro.core.errors import LoomError

        with pytest.raises(LoomError):
            loom.indexed_scan(99, index_id, (0, timestamps[-1]))

    def test_unknown_index_rejected(self, indexed_loom):
        loom, sid, _, _, timestamps = indexed_loom
        from repro.core.errors import UnknownIndexError

        with pytest.raises(UnknownIndexError):
            loom.indexed_scan(sid, 424242, (0, timestamps[-1]))

    def test_multi_source_isolation(self, loom, clock):
        """Records from other sources interleaved in the same chunks must
        never leak into a source's scan results."""
        from conftest import value_payload
        from repro.core import HistogramSpec

        loom.define_source(1)
        loom.define_source(2)
        i1 = loom.define_index(1, payload_value, HistogramSpec([10.0]))
        for i in range(200):
            loom.push(1, value_payload(float(i % 30)))
            loom.push(2, value_payload(999.0))
            clock.advance(50)
        loom.sync()
        records = loom.indexed_scan(1, i1, (0, clock.now()), (0.0, float("inf")))
        assert len(records) == 200
        assert all(r.source_id == 1 for r in records)
