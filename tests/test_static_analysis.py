"""Gated static-analysis tier: mypy --strict and ruff.

These tools are CI dependencies, not runtime dependencies; the tests
skip when the binaries are absent so a bare checkout still runs the full
tier-1 suite.  CI installs both (see the lint job in
.github/workflows/ci.yml), where a skip here would mask a regression —
hence the asserts that the binaries behave when present.
"""

import os
import shutil
import subprocess

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_MYPY = shutil.which("mypy")
_RUFF = shutil.which("ruff")


@pytest.mark.skipif(_MYPY is None, reason="mypy not installed (CI-only tier)")
def test_mypy_strict_on_core_daemon_and_tools():
    proc = subprocess.run(
        [_MYPY, "--strict", "src/repro/core", "src/repro/daemon", "tools"],
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"mypy --strict failed:\n{proc.stdout}{proc.stderr}"


@pytest.mark.skipif(_RUFF is None, reason="ruff not installed (CI-only tier)")
def test_ruff_clean():
    proc = subprocess.run(
        [_RUFF, "check", "src", "tools", "tests"],
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff check failed:\n{proc.stdout}{proc.stderr}"


def test_mypy_config_present():
    """The strict contract is pinned in pyproject, not ad-hoc CLI flags."""
    with open(os.path.join(_REPO_ROOT, "pyproject.toml")) as f:
        content = f.read()
    assert "[tool.mypy]" in content
    assert "strict = true" in content
    assert "[tool.ruff]" in content
