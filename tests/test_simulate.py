"""Tests for the calibrated resource simulation (Figures 2, 11, 14).

These assert that the mechanistic cost models hit the paper's published
anchor points and produce the qualitative shapes the figures show.
"""

import pytest

from repro.simulate import (
    PAPER_HOST,
    clickhouse_model,
    compare_backends,
    fishstore_model,
    influxdb_model,
    loom_model,
    probe_effect,
    rawfile_model,
    simulate_ingest,
    sweep_rates,
)


class TestFig2Anchors:
    """Paper: '2% of CPU at 100k ... 15% at 500k ... 23% at 1.4M where 9%
    of data drops ... 77% dropped at 6M'."""

    def test_index_cpu_at_100k(self):
        outcome = simulate_ingest(influxdb_model(), 100_000)
        assert outcome.index_cpu_fraction == pytest.approx(0.02, abs=0.005)
        assert outcome.drop_fraction == 0.0

    def test_index_cpu_at_500k(self):
        outcome = simulate_ingest(influxdb_model(), 500_000)
        assert outcome.index_cpu_fraction == pytest.approx(0.15, abs=0.01)
        assert outcome.drop_fraction == 0.0

    def test_saturation_at_1_4m(self):
        outcome = simulate_ingest(influxdb_model(), 1_400_000)
        assert outcome.index_cpu_fraction == pytest.approx(0.23, abs=0.01)
        assert outcome.drop_fraction == pytest.approx(0.09, abs=0.02)
        assert outcome.index_cores == pytest.approx(4.0, abs=0.5)  # "about four cores"

    def test_heavy_drops_at_6m(self):
        outcome = simulate_ingest(influxdb_model(), 6_000_000)
        assert outcome.drop_fraction == pytest.approx(0.77, abs=0.03)

    def test_index_cpu_plateaus_while_drops_rise(self):
        outcomes = sweep_rates(
            influxdb_model(), [1_400_000, 2_000_000, 4_000_000, 6_000_000]
        )
        idx = [o.index_cpu_fraction for o in outcomes]
        drops = [o.drop_fraction for o in outcomes]
        assert max(idx) - min(idx) < 0.01  # plateau
        assert drops == sorted(drops)  # monotone increase
        assert drops[-1] > 0.7

    def test_clickhouse_behaves_like_influx(self):
        a = simulate_ingest(influxdb_model(), 1_400_000)
        b = simulate_ingest(clickhouse_model(), 1_400_000)
        assert b.drop_fraction == pytest.approx(a.drop_fraction, abs=0.1)


class TestLoomAndLogCapacity:
    def test_loom_keeps_up_at_9m_on_one_core(self):
        """Paper: Loom keeps up with 9M records/second without dropping."""
        outcome = simulate_ingest(loom_model(), 9_000_000, host=PAPER_HOST)
        assert outcome.drop_fraction == 0.0

    def test_loom_has_finite_capacity(self):
        """Section 1's limitations: extremely high rates can overwhelm it."""
        outcome = simulate_ingest(loom_model(), 20_000_000, host=PAPER_HOST)
        assert outcome.drop_fraction > 0.0

    def test_fishstore_keeps_up_with_workloads(self):
        outcome = simulate_ingest(fishstore_model(3), 8_000_000, host=PAPER_HOST)
        assert outcome.drop_fraction == 0.0

    def test_rawfile_cheapest(self):
        loom = simulate_ingest(loom_model(), 5_000_000, host=PAPER_HOST)
        raw = simulate_ingest(rawfile_model(), 5_000_000, host=PAPER_HOST)
        assert raw.io_cpu_fraction < loom.io_cpu_fraction


class TestFig11Drops:
    """End-to-end drop fractions: InfluxDB 38-93%, Loom/FishStore 0%."""

    PHASES = {
        "redis": [865_000, 3_565_000, 7_065_000],
        "rocksdb": [4_700_000, 7_900_000, 7_939_000],
    }
    PAPER = {
        "redis": [0.382, 0.863, 0.901],
        "rocksdb": [0.879, 0.928, 0.927],
    }

    @pytest.mark.parametrize("workload", ["redis", "rocksdb"])
    def test_influx_drop_magnitudes(self, workload):
        model = influxdb_model(e2e=True)
        for rate, expected in zip(self.PHASES[workload], self.PAPER[workload]):
            outcome = simulate_ingest(model, rate)
            assert outcome.drop_fraction == pytest.approx(expected, abs=0.08)

    @pytest.mark.parametrize("workload", ["redis", "rocksdb"])
    def test_loom_and_fishstore_drop_nothing(self, workload):
        for model in (loom_model(), fishstore_model(3)):
            for rate in self.PHASES[workload]:
                outcome = simulate_ingest(model, rate, host=PAPER_HOST)
                assert outcome.drop_fraction == 0.0


class TestFig14ProbeEffect:
    """Paper: raw 4.10%, Loom 4.83%, FishStore-N 6.6%, FishStore-I 9.9%,
    InfluxDB 14.1% at ~8M events/s against a 5.06M ops/s application."""

    RATE = 8_000_000
    BASELINE = 5_060_000

    def test_ordering(self):
        models = [
            rawfile_model(),
            loom_model(),
            fishstore_model(0),
            fishstore_model(3),
            influxdb_model(e2e=True),
        ]
        outcomes = compare_backends(models, self.RATE, self.BASELINE)
        probes = [o.probe_fraction for o in outcomes]
        assert probes == sorted(probes)

    @pytest.mark.parametrize(
        "factory,expected,tolerance",
        [
            (rawfile_model, 0.041, 0.01),
            (loom_model, 0.0483, 0.01),
            (lambda: fishstore_model(0), 0.066, 0.01),
            (lambda: fishstore_model(3), 0.099, 0.01),
            (lambda: influxdb_model(e2e=True), 0.141, 0.01),
        ],
    )
    def test_magnitudes(self, factory, expected, tolerance):
        outcome = probe_effect(factory(), self.RATE, self.BASELINE)
        assert outcome.probe_fraction == pytest.approx(expected, abs=tolerance)

    def test_problematic_threshold(self):
        ok = probe_effect(loom_model(), self.RATE, self.BASELINE)
        bad = probe_effect(influxdb_model(e2e=True), self.RATE, self.BASELINE)
        assert not ok.problematic
        assert bad.problematic

    def test_loom_close_to_rawfile(self):
        """The headline claim: Loom's probe effect is on par with writing
        to a raw, unindexed file."""
        raw = probe_effect(rawfile_model(), self.RATE, self.BASELINE)
        loom = probe_effect(loom_model(), self.RATE, self.BASELINE)
        assert abs(loom.probe_fraction - raw.probe_fraction) < 0.01

    def test_app_throughput_computed(self):
        outcome = probe_effect(loom_model(), self.RATE, self.BASELINE)
        assert outcome.app_throughput == pytest.approx(
            self.BASELINE * (1 - outcome.probe_fraction)
        )

    def test_probe_scales_with_psf_count(self):
        probes = [
            probe_effect(fishstore_model(n), self.RATE, self.BASELINE).probe_fraction
            for n in range(4)
        ]
        assert probes == sorted(probes)
        deltas = [b - a for a, b in zip(probes, probes[1:])]
        # Each PSF adds the same marginal cost.
        assert max(deltas) - min(deltas) < 1e-9


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_ingest(loom_model(), -1)
        with pytest.raises(ValueError):
            probe_effect(loom_model(), -1, 1.0)

    def test_zero_rate(self):
        outcome = simulate_ingest(loom_model(), 0)
        assert outcome.drop_fraction == 0.0
        assert outcome.total_cpu_fraction == 0.0
