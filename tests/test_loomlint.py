"""Tests for the loomlint concurrency-invariant linter.

Each test builds a tiny synthetic ``repro/core`` package in a temp
directory and runs the linter over it, so rule behaviour is pinned
independently of the real source tree.  The final tests run loomlint
over the actual repo ``src/`` and assert it is clean modulo the
checked-in baseline — the same gate CI applies.
"""

import json
import os
import subprocess
import sys


# The tools package lives at the repo root (not under src/); tests run
# from a checkout, so resolve it relative to this file.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.loomlint import run  # noqa: E402
from tools.loomlint.config import RULES  # noqa: E402


def make_core(tmp_path, **modules):
    """Create repro/core/<name>.py files and return the package root."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (core / "__init__.py").write_text("")
    for name, source in modules.items():
        (core / (name + ".py")).write_text(source)
    return tmp_path / "repro"


def lint(tmp_path, **modules):
    root = make_core(tmp_path, **modules)
    result = run([str(root)], root=str(tmp_path), baseline_path=None)
    return result


def codes(result):
    return sorted(v.rule for v in result.violations)


# ----------------------------------------------------------------------
# LOOM101: reader-path blocking
# ----------------------------------------------------------------------
def test_lock_on_reader_path_flagged(tmp_path):
    result = lint(
        tmp_path,
        snapshot="""
class Snapshot:
    def capture(self):
        "Linearization point."
        with self._lock:
            return 1
""",
    )
    assert codes(result) == ["LOOM101"]
    (v,) = result.violations
    assert "lock" in v.message
    assert v.symbol == "repro.core.snapshot.Snapshot.capture"


def test_blocking_reached_through_typed_attribute(tmp_path):
    """self._storage.sync() resolves via ATTR_TYPES to Storage.sync."""
    result = lint(
        tmp_path,
        storage="""
import os


class Storage:
    def sync(self):
        os.fsync(1)
""",
        snapshot="""
class Snapshot:
    def capture(self):
        "Linearization point."
        self._storage.sync()
""",
    )
    assert codes(result) == ["LOOM101"]
    (v,) = result.violations
    assert "os.fsync" in v.message
    assert v.symbol == "repro.core.storage.Storage.sync"
    assert "reachable via" in v.message


def test_sleep_on_writer_path_not_flagged(tmp_path):
    """time.sleep is fine off the reader closure (flush retry backoff)."""
    result = lint(
        tmp_path,
        writer="""
import time


class HybridLog:
    def _flush_with_retry(self):
        time.sleep(0.01)
""",
    )
    assert result.violations == []


def test_subclass_override_included_in_closure(tmp_path):
    """A Storage subclass's blocking override is reachable via the base."""
    result = lint(
        tmp_path,
        storage="""
import os


class Storage:
    def sync(self):
        pass


class FileStorage(Storage):
    def sync(self):
        os.fsync(1)
""",
        snapshot="""
class Snapshot:
    def capture(self):
        "Linearization point."
        self._storage.sync()
""",
    )
    assert codes(result) == ["LOOM101"]
    assert result.violations[0].symbol == "repro.core.storage.FileStorage.sync"


# ----------------------------------------------------------------------
# LOOM102: version parity
# ----------------------------------------------------------------------
def test_unbalanced_version_bump_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def half_recycle(self):
        self._version += 1
        self.closed = True
""",
    )
    assert codes(result) == ["LOOM102"]


def test_return_between_bumps_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def recycle(self, fast):
        self._version += 1
        if fast:
            return
        self._version += 1
""",
    )
    assert codes(result) == ["LOOM102"]
    assert "return/raise between version bumps" in result.violations[0].message


def test_direct_version_store_flagged_outside_init(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def __init__(self):
        self._version = 0

    def reset(self):
        self._version = 0
""",
    )
    assert codes(result) == ["LOOM102"]
    assert result.violations[0].symbol == "repro.core.blk.Block.reset"


def test_balanced_bumps_clean(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def recycle(self):
        self._version += 1
        self.filled = 0
        self._version += 1
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM103: publish order
# ----------------------------------------------------------------------
def test_payload_store_after_publish_flagged(tmp_path):
    result = lint(
        tmp_path,
        rlog="""
class RecordLog:
    def push(self, summary):
        self._watermark = 10
        self.chunk_index.append(summary)
""",
    )
    assert codes(result) == ["LOOM103"]


def test_payload_before_publish_clean(tmp_path):
    result = lint(
        tmp_path,
        rlog="""
class RecordLog:
    def push(self, summary):
        self.chunk_index.append(summary)
        self._watermark = 10
""",
    )
    assert result.violations == []


def test_list_append_not_a_payload_store(tmp_path):
    """Plain list.append after publish is not an index mutation."""
    result = lint(
        tmp_path,
        rlog="""
class RecordLog:
    def push(self, out):
        self._watermark = 10
        out.append(1)
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM104: nondeterminism in core
# ----------------------------------------------------------------------
def test_wall_clock_in_core_flagged(tmp_path):
    result = lint(
        tmp_path,
        rlog="""
import time


def now():
    return time.time()
""",
    )
    assert codes(result) == ["LOOM104"]


def test_random_in_core_flagged(tmp_path):
    result = lint(
        tmp_path,
        summary="""
import random


def jitter():
    return random.random()
""",
    )
    assert codes(result) == ["LOOM104"]


def test_clock_module_exempt(tmp_path):
    result = lint(
        tmp_path,
        clock="""
import time


class Clock:
    def now(self):
        return time.time()
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM111: nondeterminism in the metrics layer (repro/scope)
# ----------------------------------------------------------------------
def lint_scope(tmp_path, **modules):
    """Create repro/scope/<name>.py files and lint the package."""
    scope = tmp_path / "repro" / "scope"
    scope.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (scope / "__init__.py").write_text("")
    for name, source in modules.items():
        (scope / (name + ".py")).write_text(source)
    return run([str(tmp_path / "repro")], root=str(tmp_path), baseline_path=None)


def test_wall_clock_in_scope_flagged(tmp_path):
    result = lint_scope(
        tmp_path,
        selfscope="""
import time


def stamp():
    return time.perf_counter_ns()
""",
    )
    assert codes(result) == ["LOOM111"]
    (v,) = result.violations
    assert "repro.core.clock" in v.message


def test_scope_clock_usage_clean(tmp_path):
    result = lint_scope(
        tmp_path,
        selfscope="""
def stamp(registry):
    return registry.clock.now()
""",
    )
    assert result.violations == []


def test_scope_suppression_applies_to_loom111(tmp_path):
    result = lint_scope(
        tmp_path,
        exposition="""
import time


def stamp():
    return time.time()  # loomlint: disable=metrics-clock
""",
    )
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["LOOM111"]


# ----------------------------------------------------------------------
# LOOM105: exception hygiene
# ----------------------------------------------------------------------
def test_bare_except_flagged(tmp_path):
    result = lint(
        tmp_path,
        summary="""
def f():
    try:
        pass
    except:
        pass
""",
    )
    assert codes(result) == ["LOOM105"]


def test_swallowed_storage_error_in_flush_module_flagged(tmp_path):
    result = lint(
        tmp_path,
        recovery="""
def flush():
    try:
        pass
    except StorageError:
        pass
""",
    )
    assert codes(result) == ["LOOM105"]
    assert "discards the error" in result.violations[0].message


def test_handler_that_reraises_clean(tmp_path):
    result = lint(
        tmp_path,
        recovery="""
def flush():
    try:
        pass
    except StorageError:
        raise
""",
    )
    assert result.violations == []


def test_handler_that_uses_error_clean(tmp_path):
    result = lint(
        tmp_path,
        recovery="""
def flush(self):
    try:
        pass
    except StorageError as exc:
        self.park(exc)
""",
    )
    assert result.violations == []


def test_swallow_outside_flush_modules_allowed(tmp_path):
    result = lint(
        tmp_path,
        summary="""
def tidy():
    try:
        pass
    except ValueError:
        pass
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM106: contract docstrings
# ----------------------------------------------------------------------
def test_contract_docstring_missing_keyword_flagged(tmp_path):
    result = lint(
        tmp_path,
        block="""
class Block:
    def try_copy(self, address, length):
        "Copy bytes."

    def read_range(self, address, length):
        "Seqlock-validated read; raises SnapshotRetry when torn."

    def recycle(self):
        "Bump version odd, clear, bump even."
        self._version += 1
        self._version += 1
""",
        hybridlog="""
class HybridLog:
    def read(self, address, length):
        "Seqlock fast path."

    def publish(self, target):
        "Advance the watermark."
""",
        record_log="""
class RecordLog:
    def _publish(self):
        "Publication order: log, chunk index, timestamp index, head."
""",
        snapshot="""
class Snapshot:
    @classmethod
    def capture(cls, record_log):
        "Linearization point for queries."
""",
    )
    # Only try_copy lacks its keyword ("seqlock").
    assert codes(result) == ["LOOM106"]
    assert result.violations[0].symbol == "repro.core.block.Block.try_copy"


def test_contract_function_deleted_flagged(tmp_path):
    """Analyzing block.py without read_range reports the missing contract."""
    result = lint(
        tmp_path,
        block="""
class Block:
    def try_copy(self, address, length):
        "Seqlock-validated copy."

    def recycle(self):
        "Version goes odd, then even."
        self._version += 1
        self._version += 1
""",
    )
    missing = [v for v in result.violations if "is missing" in v.message]
    assert len(missing) == 1
    assert missing[0].symbol == "repro.core.block.Block.read_range"


# ----------------------------------------------------------------------
# LOOM107: seqlock-state mutation visibility
# ----------------------------------------------------------------------
def test_unmarked_seqlock_store_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def silently_unmap(self):
        self.base_address = None
""",
    )
    assert codes(result) == ["LOOM107"]
    assert "base_address" in result.violations[0].message


def test_seqlock_store_with_yield_marker_clean(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def map(self, base):
        self.base_address = base
        self.filled = 0
        yieldpoints.hit("block.map", block=self)
""",
    )
    assert result.violations == []


def test_seqlock_store_inside_version_bracket_clean(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def recycle(self):
        self._version += 1
        self.base_address = None
        self.filled = 0
        self._version += 1
""",
    )
    assert result.violations == []


def test_seqlock_store_outside_bracket_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def recycle(self):
        self._version += 1
        self.base_address = None
        self._version += 1
        self.filled = 0
""",
    )
    assert codes(result) == ["LOOM107"]
    assert "filled" in result.violations[0].message


def test_init_exempt_from_seqlock_visibility(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def __init__(self):
        self.base_address = None
        self.filled = 0
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM108: sanitizer isolation
# ----------------------------------------------------------------------
def test_module_scope_sanitizer_import_flagged(tmp_path):
    result = lint(
        tmp_path,
        hot="""
from . import sanitizer
""",
    )
    assert codes(result) == ["LOOM108"]


def test_env_guarded_sanitizer_import_clean(tmp_path):
    result = lint(
        tmp_path,
        hot="""
import os

if os.environ.get("LOOMSAN") == "1":
    from repro.core.sanitizer import install

    install()
""",
    )
    assert result.violations == []


def test_function_scope_sanitizer_import_clean(tmp_path):
    result = lint(
        tmp_path,
        hot="""
def enable():
    from repro.core import sanitizer

    sanitizer.install()
""",
    )
    assert result.violations == []


def test_sanitizer_module_itself_exempt(tmp_path):
    result = lint(
        tmp_path,
        sanitizer="""
import repro.core.sanitizer
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM109: shadow totality
# ----------------------------------------------------------------------
_RECORD_LOG_SRC = """
class RecordLog:
    def _publish(self):
        "Publication order: payload stores before the watermark."

    def define_source(self): pass
    def close_source(self): pass
    def define_index(self): pass
    def close_index(self): pass
    def push(self): pass
    def push_many(self): pass
    def sync(self): pass
    def migrate(self): pass
    def apply_retention(self): pass
    def close(self): pass
    def reopen(self): pass
"""

_SHADOW_MIRRORS = [
    "define_source",
    "close_source",
    "define_index",
    "close_index",
    "push",
    "push_many",
    "sync",
    "migrate",
    "apply_retention",
    "close",
    "reopen",
]


def _shadow_src(mirrors, extra=()):
    lines = ["class ShadowLog:"]
    for name in mirrors:
        lines.append(f"    def on_{name}(self): pass")
    for name in extra:
        lines.append(f"    def on_{name}(self): pass")
    return "\n".join(lines) + "\n"


def test_complete_shadow_surface_clean(tmp_path):
    result = lint(
        tmp_path,
        record_log=_RECORD_LOG_SRC,
        sanitizer=_shadow_src(_SHADOW_MIRRORS),
    )
    assert result.violations == []


def test_missing_shadow_mirror_flagged(tmp_path):
    result = lint(
        tmp_path,
        record_log=_RECORD_LOG_SRC,
        sanitizer=_shadow_src([m for m in _SHADOW_MIRRORS if m != "push_many"]),
    )
    assert codes(result) == ["LOOM109"]
    assert "on_push_many" in result.violations[0].message


def test_unmapped_shadow_mirror_flagged(tmp_path):
    result = lint(
        tmp_path,
        record_log=_RECORD_LOG_SRC,
        sanitizer=_shadow_src(_SHADOW_MIRRORS, extra=["truncate"]),
    )
    assert codes(result) == ["LOOM109"]
    assert "on_truncate" in result.violations[0].message


def test_shadow_rule_inert_without_both_classes(tmp_path):
    result = lint(tmp_path, record_log=_RECORD_LOG_SRC)
    assert result.violations == []


# ----------------------------------------------------------------------
# LOOM110: stable schedule alphabet
# ----------------------------------------------------------------------
def test_computed_yield_label_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def poke(self, name):
        yieldpoints.note(f"dyn.{name}")
""",
    )
    assert codes(result) == ["LOOM110"]
    assert "computed" in result.violations[0].message


def test_nonconforming_literal_label_flagged(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def poke(self):
        yieldpoints.hit("Block Recycled!")
""",
    )
    assert codes(result) == ["LOOM110"]
    assert "alphabet" in result.violations[0].message


def test_dotted_literal_label_clean(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def poke(self):
        yieldpoints.hit("block.recycle.begin", block=self)
        yieldpoints.note("block.try_copy.version1", version=2)
""",
    )
    assert result.violations == []


def test_foreign_wire_format_key_flagged(tmp_path):
    result = lint(
        tmp_path,
        schedule="""
class FuzzSchedule:
    def to_json(self):
        payload = {
            "version": 1,
            "seed": self.seed,
            "steps": list(self.steps),
            "trace": list(self.trace),
            "error": self.error,
            "recorded_at": self.wall_clock,
        }
        return payload
""",
    )
    assert codes(result) == ["LOOM110"]
    assert "recorded_at" in result.violations[0].message


def test_declared_wire_format_clean(tmp_path):
    result = lint(
        tmp_path,
        schedule="""
class FuzzSchedule:
    def to_json(self):
        return {
            "version": 1,
            "seed": self.seed,
            "steps": list(self.steps),
            "trace": list(self.trace),
            "error": self.error,
        }
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------
def test_line_suppression_by_code_and_slug(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def a(self):
        self._version += 1  # loomlint: disable=LOOM102

    def b(self):
        self._version += 1  # loomlint: disable=version-parity
""",
    )
    assert result.violations == []
    assert len(result.suppressed) == 2


def test_def_line_suppression_covers_function(tmp_path):
    result = lint(
        tmp_path,
        snapshot="""
class Snapshot:
    def capture(self):  # loomlint: disable=LOOM101
        "Linearization point."
        with self._lock:
            return 1
""",
    )
    assert result.violations == []
    assert len(result.suppressed) == 1


def test_suppression_does_not_leak_to_other_rules(tmp_path):
    result = lint(
        tmp_path,
        blk="""
class Block:
    def a(self):
        self._version += 1  # loomlint: disable=LOOM101
""",
    )
    assert codes(result) == ["LOOM102"]


def test_baseline_filters_known_violations(tmp_path):
    root = make_core(
        tmp_path,
        blk="""
class Block:
    def a(self):
        self._version += 1
""",
    )
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            [
                {
                    "rule": "LOOM102",
                    "path": "repro/core/blk.py",
                    "symbol": "repro.core.blk.Block.a",
                }
            ]
        )
    )
    result = run([str(root)], root=str(tmp_path), baseline_path=str(baseline))
    assert result.violations == []
    assert len(result.baselined) == 1


# ----------------------------------------------------------------------
# LOOM112-LOOM116: the networked service rules
# ----------------------------------------------------------------------
def make_daemon(tmp_path, **modules):
    """Create repro/daemon/<name>.py files and return the package root."""
    daemon = tmp_path / "repro" / "daemon"
    daemon.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (daemon / "__init__.py").write_text("")
    for name, source in modules.items():
        (daemon / (name + ".py")).write_text(source)
    return tmp_path / "repro"


def lint_daemon(tmp_path, **modules):
    root = make_daemon(tmp_path, **modules)
    return run([str(root)], root=str(tmp_path), baseline_path=None)


def test_sleep_reachable_from_async_handler_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
import time


class Server:
    async def handle(self):
        return self._settle()

    def _settle(self):
        time.sleep(0.1)
""",
    )
    assert codes(result) == ["LOOM112"]
    (v,) = result.violations
    assert "time.sleep" in v.message
    assert v.symbol == "repro.daemon.server.Server._settle"


def test_awaited_wait_is_cooperative_not_blocking(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Server:
    async def serve(self):
        await self._stop.wait()
""",
    )
    assert result.violations == []


def test_admission_queue_put_exempt_blocking_get_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Server:
    async def handle(self):
        return self._pump()

    def _pump(self):
        self.queue.put(("batch", 1))
        return self.queue.get(timeout=1.0)
""",
    )
    assert codes(result) == ["LOOM112"]
    assert "queue" in result.violations[0].message
    assert "get" in result.violations[0].message


def test_sync_sleep_outside_async_closure_clean(tmp_path):
    result = lint_daemon(
        tmp_path,
        worker="""
import time


class Worker:
    def run(self):
        time.sleep(0.1)
""",
    )
    assert result.violations == []


def test_async_touching_shard_state_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Server:
    async def handle(self, shard):
        if shard.shedding:
            shard.pending = set()
""",
    )
    assert codes(result) == ["LOOM113", "LOOM113"]
    reads = [v for v in result.violations if "reads" in v.message]
    writes = [v for v in result.violations if "mutates" in v.message]
    assert len(reads) == 1 and ".shedding" in reads[0].message
    assert len(writes) == 1 and ".pending" in writes[0].message


def test_sync_admission_touching_shard_state_clean(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Shard:
    def admit(self, key):
        if self.shedding:
            return "retry_after"
        self.pending.add(key)
        return "ack"
""",
    )
    assert result.violations == []


def test_request_method_without_deadline_param_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        client="""
class LoomClient:
    def _request(self, header, body=b"", deadline_s=None):
        return {}

    def health(self):
        return self._request({"op": "health"})
""",
    )
    assert codes(result) == ["LOOM114", "LOOM114"]
    messages = " / ".join(v.message for v in result.violations)
    assert "deadline_s" in messages
    assert all(v.symbol.endswith("LoomClient.health") for v in result.violations)


def test_request_method_forwarding_deadline_clean(tmp_path):
    result = lint_daemon(
        tmp_path,
        client="""
class LoomClient:
    def _request(self, header, body=b"", deadline_s=None):
        return {}

    def health(self, deadline_s=None):
        return self._request({"op": "health"}, deadline_s=deadline_s)
""",
    )
    assert result.violations == []


def test_frame_io_without_timeout_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        client="""
class LoomClient:
    def poke(self, frame):
        self._transport.send_frame(frame)
        return self._transport.recv_frame()
""",
    )
    assert codes(result) == ["LOOM114"]
    assert "set_timeout" in result.violations[0].message


def test_frame_io_with_timeout_clean(tmp_path):
    result = lint_daemon(
        tmp_path,
        client="""
class LoomClient:
    def poke(self, frame, timeout_s):
        self._transport.set_timeout(timeout_s)
        self._transport.send_frame(frame)
        return self._transport.recv_frame()
""",
    )
    assert result.violations == []


def test_redeclared_wire_struct_format_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        export="""
import struct

_PREFIX = struct.Struct(">I")
""",
    )
    assert codes(result) == ["LOOM115"]
    assert "'>I'" in result.violations[0].message


def test_rebound_wire_constant_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        export="""
MAX_FRAME_BYTES = 1 << 20
""",
    )
    assert codes(result) == ["LOOM115"]
    assert "MAX_FRAME_BYTES" in result.violations[0].message


def test_protocol_module_owns_wire_constants(tmp_path):
    """protocol.py itself may (must) declare the wire constants."""
    result = lint_daemon(
        tmp_path,
        protocol="""
import struct

LEN_PREFIX = struct.Struct(">I")
MAX_FRAME_BYTES = 8 << 20
""",
    )
    assert result.violations == []


def test_foreign_struct_format_not_a_wire_constant(tmp_path):
    """Little-endian file formats (export/otel) are not wire framing."""
    result = lint_daemon(
        tmp_path,
        export="""
import struct

_FRAME = struct.Struct("<IQI")
""",
    )
    assert result.violations == []


def test_raw_header_subscript_flagged(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Server:
    def dispatch(self, header):
        return header["op"]
""",
    )
    assert codes(result) == ["LOOM116"]
    assert "header['op']" in result.violations[0].message


def test_guarded_header_subscript_clean(tmp_path):
    result = lint_daemon(
        tmp_path,
        server="""
class Server:
    def t_range(self, header):
        try:
            return int(header["t_start"]), int(header["t_end"])
        except (KeyError, TypeError, ValueError):
            raise RuntimeError("bad range")

    def count(self, header):
        if "records" in header:
            return header["records"]
        return None
""",
    )
    assert result.violations == []


def test_header_store_and_get_are_not_raw_reads(tmp_path):
    result = lint_daemon(
        tmp_path,
        client="""
class LoomClient:
    def build(self, header):
        header["v"] = 1
        return header.get("op")
""",
    )
    assert result.violations == []


def test_header_subscript_outside_daemon_modules_ignored(tmp_path):
    result = lint_daemon(
        tmp_path,
        monitor="""
def peek(header):
    return header["op"]
""",
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# The real tree and the CLI
# ----------------------------------------------------------------------
def test_repo_src_is_clean_modulo_baseline():
    baseline = os.path.join(_REPO_ROOT, "tools", "loomlint", "baseline.json")
    result = run(
        [os.path.join(_REPO_ROOT, "src")],
        root=_REPO_ROOT,
        baseline_path=baseline,
    )
    rendered = "\n".join(v.render() for v in result.violations)
    assert result.clean, f"new loomlint violations:\n{rendered}"


def test_cli_exit_codes(tmp_path):
    make_core(
        tmp_path,
        blk="""
class Block:
    def a(self):
        self._version += 1
""",
    )
    env = dict(os.environ, PYTHONPATH=_REPO_ROOT)
    bad = subprocess.run(
        [sys.executable, "-m", "tools.loomlint", "repro/", "--no-baseline"],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert bad.returncode == 1
    assert "LOOM102" in bad.stdout

    clean = subprocess.run(
        [sys.executable, "-m", "tools.loomlint", "repro/core/__init__.py"],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stderr

    missing = subprocess.run(
        [sys.executable, "-m", "tools.loomlint", "no/such/dir"],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert missing.returncode == 2


def test_update_baseline_verb_round_trips(tmp_path):
    make_core(
        tmp_path,
        blk="""
class Block:
    def a(self):
        self._version += 1
""",
    )
    env = dict(os.environ, PYTHONPATH=_REPO_ROOT)
    baseline = tmp_path / "accepted.json"

    update = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.loomlint",
            "repro/",
            "--baseline",
            str(baseline),
            "--update-baseline",
        ],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert update.returncode == 0, update.stderr
    entries = json.loads(baseline.read_text())
    assert entries == [
        {
            "rule": "LOOM102",
            "path": "repro/core/blk.py",
            "symbol": "repro.core.blk.Block.a",
        }
    ]

    # The same tree now lints clean against the written baseline...
    clean = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.loomlint",
            "repro/",
            "--baseline",
            str(baseline),
        ],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "1 baselined" in clean.stdout

    # ...and re-updating after the fix empties the baseline instead of
    # accumulating stale entries.
    (tmp_path / "repro" / "core" / "blk.py").write_text(
        "class Block:\n    pass\n"
    )
    subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.loomlint",
            "repro/",
            "--baseline",
            str(baseline),
            "--update-baseline",
        ],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    assert json.loads(baseline.read_text()) == []


def test_update_baseline_conflicts_with_no_baseline(tmp_path):
    env = dict(os.environ, PYTHONPATH=_REPO_ROOT)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.loomlint",
            "--update-baseline",
            "--no-baseline",
        ],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2
    assert "mutually exclusive" in proc.stderr


def test_list_rules_covers_registry(tmp_path):
    env = dict(os.environ, PYTHONPATH=_REPO_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "tools.loomlint", "--list-rules"],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for code in RULES:
        assert code in proc.stdout
