"""Tests for the loomflow view-lifetime analysis.

Each rule is pinned on a tiny synthetic tree (so behaviour is independent
of the real source), then the final tests run the analysis and the seeded
mutant catalog over the actual repo — the same gates CI applies.
"""

import json
import os
import subprocess
import sys
import textwrap

# The tools package lives at the repo root (not under src/); tests run
# from a checkout, so resolve it relative to this file.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.loomflow import run  # noqa: E402
from tools.loomflow.engine import save_baseline  # noqa: E402
from tools.loomflow.mutants import MUTANTS, check_mutant  # noqa: E402


def analyze_tree(tmp_path, files, baseline_path=None):
    """Write ``files`` (relpath -> source) under tmp_path and analyze."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run([str(tmp_path)], root=str(tmp_path), baseline_path=baseline_path)


def codes(result):
    return sorted(f.rule for f in result.findings)


# ----------------------------------------------------------------------
# LOOM201: SnapshotRetry bracket escapes
# ----------------------------------------------------------------------
def test_bracket_escape_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/reader.py": """
            def racy_read(log, address, length):
                try:
                    view = log.read_view(address, length)
                except SnapshotRetry:
                    raise
                return bytes(view)
            """,
        },
    )
    assert codes(result) == ["LOOM201"]
    assert "read_view" not in result.findings[0].borrow_site
    assert result.findings[0].borrow_site.endswith(":4")


def test_use_inside_bracket_clean(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/reader.py": """
            def safe_read(log, address, length):
                try:
                    view = log.read_view(address, length)
                    data = bytes(view)
                except SnapshotRetry:
                    raise
                return data
            """,
        },
    )
    assert codes(result) == []


def test_plain_try_is_not_a_bracket(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/reader.py": """
            def io_read(log, address, length):
                try:
                    view = log.read_view(address, length)
                except OSError:
                    raise
                return bytes(view)
            """,
        },
    )
    assert codes(result) == []


# ----------------------------------------------------------------------
# LOOM202/LOOM203: stores that outlive the scope
# ----------------------------------------------------------------------
def test_store_on_self_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                self._hot = storage.read_view(0, 64)
            """,
        },
    )
    assert codes(result) == ["LOOM202"]


def test_store_of_copied_bytes_clean(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                self._hot = bytes(storage.read_view(0, 64))
            """,
        },
    )
    assert codes(result) == []


def test_module_container_store_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            _CACHE = {}

            def warm(storage, key):
                _CACHE[key] = storage.read_view(0, 64)
            """,
        },
    )
    assert codes(result) == ["LOOM203"]


def test_append_to_self_container_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                self._views.append(storage.read_view(0, 64))
            """,
        },
    )
    assert codes(result) == ["LOOM203"]


def test_local_collection_clean(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def _decode_all(storage):
                views = []
                views.append(storage.read_view(0, 64))
                return [bytes(v) for v in views]
            """,
        },
    )
    assert codes(result) == []


# ----------------------------------------------------------------------
# LOOM204/LOOM205: daemon-only concurrency rules
# ----------------------------------------------------------------------
def test_view_across_await_flagged_in_daemon(tmp_path):
    source = """
    async def stream(storage, writer):
        view = storage.read_view(0, 128)
        await writer.drain()
        return len(view)
    """
    daemon = analyze_tree(tmp_path, {"repro/daemon/server.py": source})
    assert codes(daemon) == ["LOOM204"]


def test_view_across_await_not_flagged_in_core(tmp_path):
    source = """
    async def stream(storage, writer):
        view = storage.read_view(0, 128)
        await writer.drain()
        return len(view)
    """
    core = analyze_tree(tmp_path, {"repro/core/stream.py": source})
    assert "LOOM204" not in codes(core)


def test_copy_before_await_clean(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/daemon/server.py": """
            async def stream(storage, writer):
                data = bytes(storage.read_view(0, 128))
                await writer.drain()
                return len(data)
            """,
        },
    )
    assert codes(result) == []


def test_queue_handoff_flagged_in_daemon(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/daemon/server.py": """
            def enqueue(storage, out_queue):
                out_queue.put_nowait(storage.read_view(0, 128))
            """,
        },
    )
    assert codes(result) == ["LOOM205"]


def test_thread_constructor_handoff_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/daemon/server.py": """
            def spawn(storage):
                view = storage.read_view(0, 128)
                t = Thread(target=consume, args=(view,))
                t.start()
            """,
        },
    )
    assert "LOOM205" in codes(result)


# ----------------------------------------------------------------------
# LOOM206: public borrows need a contract (or a copy)
# ----------------------------------------------------------------------
def test_public_return_of_borrow_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def peek(self, address, length):
                return self.read_view(address, length)
            """,
        },
    )
    assert codes(result) == ["LOOM206"]


def test_private_return_of_borrow_exempt(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def _peek(self, address, length):
                return self.read_view(address, length)
            """,
        },
    )
    assert codes(result) == []


def test_contract_suppresses_public_borrow(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def peek(self, address, length):  # loomflow: borrows=storage
                return self.read_view(address, length)
            """,
        },
    )
    assert codes(result) == []


def test_interprocedural_borrow_reaches_public_return(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def _helper(storage, address, length):
                return storage.read_view(address, length)

            def fetch(storage, address, length):
                return _helper(storage, address, length)
            """,
        },
    )
    assert codes(result) == ["LOOM206"]
    assert result.findings[0].symbol.endswith(".fetch")


def test_copy_true_call_site_launders(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def fetch(log, start, end):
                return log.iter_records_between(start, end, copy=True)
            """,
        },
    )
    assert codes(result) == []


def test_copy_false_call_site_is_a_borrow(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def fetch(log, start, end):
                return log.iter_records_between(start, end, copy=False)
            """,
        },
    )
    assert codes(result) == ["LOOM206"]


def test_copy_default_true_launders_bare_call(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def scan(self, start, end, copy=True):  # loomflow: borrows=scan
                if copy:
                    return bytes(self.read_view(start, end - start))
                return self.read_view(start, end - start)

            def fetch(self, start, end):
                return self.scan(start, end)
            """,
        },
    )
    # fetch takes scan's copying default, so it returns owned bytes.
    assert codes(result) == []


# ----------------------------------------------------------------------
# LOOM207: writes through borrows
# ----------------------------------------------------------------------
def test_write_through_borrow_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/patch.py": """
            def scrub(storage):
                view = storage.read_view(0, 16)
                view[0:4] = b"\\x00\\x00\\x00\\x00"
            """,
        },
    )
    assert codes(result) == ["LOOM207"]


# ----------------------------------------------------------------------
# LOOM208: contract hygiene
# ----------------------------------------------------------------------
def test_unknown_lifetime_token_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def peek(self, address, length):  # loomflow: borrows=forever
                return self.read_view(address, length)
            """,
        },
    )
    assert codes(result) == ["LOOM208"]


def test_stale_contract_flagged(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/log.py": """
            def peek(self, address, length):  # loomflow: borrows=scan
                return bytes(self.read_view(address, length))
            """,
        },
    )
    assert codes(result) == ["LOOM208"]
    assert "stale" in result.findings[0].message


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------
def test_suppression_comment_applies(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                self._hot = storage.read_view(0, 64)  # loomflow: disable=LOOM202
            """,
        },
    )
    assert codes(result) == []
    assert [f.rule for f in result.suppressed] == ["LOOM202"]


def test_suppression_by_slug(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                self._hot = storage.read_view(0, 64)  # loomflow: disable=view-stored-on-self
            """,
        },
    )
    assert codes(result) == []


def test_baseline_roundtrip(tmp_path):
    files = {
        "repro/core/cache.py": """
        def warm(self, storage):
            self._hot = storage.read_view(0, 64)
        """,
    }
    first = analyze_tree(tmp_path, files)
    assert codes(first) == ["LOOM202"]
    baseline = tmp_path / "baseline.json"
    save_baseline(str(baseline), first.findings)
    second = run(
        [str(tmp_path)], root=str(tmp_path), baseline_path=str(baseline)
    )
    assert codes(second) == []
    assert [f.rule for f in second.baselined] == ["LOOM202"]


# ----------------------------------------------------------------------
# Findings carry borrow sites
# ----------------------------------------------------------------------
def test_finding_names_borrow_site(tmp_path):
    result = analyze_tree(
        tmp_path,
        {
            "repro/core/cache.py": """
            def warm(self, storage):
                view = storage.read_view(0, 64)
                self._hot = view
            """,
        },
    )
    (finding,) = result.findings
    assert finding.line == 4
    assert finding.borrow_site == "repro/core/cache.py:3"
    assert "borrowed at" in finding.render()


# ----------------------------------------------------------------------
# The real tree and the mutant catalog
# ----------------------------------------------------------------------
def test_real_tree_clean_with_empty_baseline():
    baseline_path = os.path.join(
        _REPO_ROOT, "tools", "loomflow", "baseline.json"
    )
    with open(baseline_path, "r", encoding="utf-8") as f:
        assert json.load(f) == {"accepted": []}, "baseline must stay empty"
    result = run(
        [os.path.join(_REPO_ROOT, "src")],
        root=_REPO_ROOT,
        baseline_path=baseline_path,
    )
    assert result.findings == [], [f.render() for f in result.findings]


def test_mutant_catalog_covers_every_rule():
    rules = {m.rule for m in MUTANTS}
    assert rules == {f"LOOM20{i}" for i in range(1, 9)}
    assert len(MUTANTS) >= 8


def test_every_mutant_is_caught():
    for mutant in MUTANTS:
        ok, detail, finding = check_mutant(_REPO_ROOT, mutant)
        assert ok, f"{mutant.name}: {detail}"
        assert finding is not None and finding.borrow_site


def test_cli_exit_codes(tmp_path):
    env = dict(os.environ)
    clean = subprocess.run(
        [sys.executable, "-m", "tools.loomflow", "check"],
        cwd=_REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    missing = subprocess.run(
        [sys.executable, "-m", "tools.loomflow", "check", "no/such/dir"],
        cwd=_REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert missing.returncode == 2
    # A tree with a finding exits 1 and writes the JSON artifact.
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "cache.py").write_text(
        "def warm(self, storage):\n"
        "    self._hot = storage.read_view(0, 64)\n"
    )
    out = tmp_path / "findings.json"
    dirty = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.loomflow",
            "check",
            str(tmp_path),
            "--no-baseline",
            "--out",
            str(out),
        ],
        cwd=_REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert dirty.returncode == 1, dirty.stdout + dirty.stderr
    assert "LOOM202" in dirty.stdout
    payload = json.loads(out.read_text())
    assert payload["findings"][0]["rule"] == "LOOM202"
