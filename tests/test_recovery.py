"""Tests for recovery from persisted logs (paper §4.5 durability story)."""

import pytest

from repro.core import HistogramSpec, Loom, LoomConfig, VirtualClock
from repro.core.hybridlog import NULL_ADDRESS
from repro.core.recovery import (
    recover,
    scan_persisted_records,
    scan_persisted_summaries,
    scan_persisted_timestamps,
)
from repro.core.storage import FileStorage, MemoryStorage

from conftest import payload_value, value_payload

pytestmark = pytest.mark.faults


def build_instance(tmp_path, n_records=500, close=True):
    config = LoomConfig(
        chunk_size=512,
        record_block_size=2048,
        timestamp_interval=16,
        data_dir=str(tmp_path),
    )
    clock = VirtualClock()
    loom = Loom(config, clock=clock)
    loom.define_source(1)
    loom.define_source(2)
    loom.define_index(1, payload_value, HistogramSpec([10.0, 100.0]))
    for i in range(n_records):
        loom.push(1 + i % 2, value_payload(float(i % 200)))
        clock.advance(1000)
    if close:
        loom.close()
    return loom


class TestScanPersisted:
    def test_records_roundtrip_after_close(self, tmp_path):
        build_instance(tmp_path, 300)
        storage = FileStorage(str(tmp_path / "records.log"))
        records = list(scan_persisted_records(storage))
        assert len(records) == 300
        assert [payload_value(r.payload) for r in records[:3]] == [0.0, 1.0, 2.0]
        storage.close()

    def test_torn_tail_record_is_skipped(self):
        storage = MemoryStorage()
        from repro.core.record import encode_record

        storage.append(encode_record(1, 100, NULL_ADDRESS, b"complete"))
        torn = encode_record(1, 200, 0, b"torn-payload")
        storage.append(torn[: len(torn) - 4])  # cut mid-payload
        records = list(scan_persisted_records(storage))
        assert len(records) == 1
        assert records[0].payload == b"complete"

    def test_summaries_scan(self, tmp_path):
        build_instance(tmp_path, 300)
        storage = FileStorage(str(tmp_path / "chunks.idx"))
        summaries = list(scan_persisted_summaries(storage))
        assert len(summaries) > 3
        assert [s.chunk_id for s in summaries] == sorted(
            s.chunk_id for s in summaries
        )
        storage.close()

    def test_timestamp_scan(self, tmp_path):
        build_instance(tmp_path, 300)
        storage = FileStorage(str(tmp_path / "timestamps.idx"))
        entries = list(scan_persisted_timestamps(storage))
        assert entries
        timestamps = [e[0] for e in entries]
        assert timestamps == sorted(timestamps)
        storage.close()


class TestRecover:
    def test_full_recovery_after_clean_close(self, tmp_path):
        build_instance(tmp_path, 400)
        state = recover(
            FileStorage(str(tmp_path / "records.log")),
            FileStorage(str(tmp_path / "chunks.idx")),
            FileStorage(str(tmp_path / "timestamps.idx")),
        )
        assert state.total_records == 400
        assert state.sources[1].record_count == 200
        assert state.sources[2].record_count == 200
        assert state.summaries
        assert state.timestamp_entries

    def test_recovered_chains_walkable(self, tmp_path):
        build_instance(tmp_path, 100)
        record_storage = FileStorage(str(tmp_path / "records.log"))
        state = recover(record_storage)
        # Walk source 1's chain from the recovered head.
        from repro.core.record import HEADER_SIZE, decode_header

        address = state.chain(1)
        count = 0
        while address is not None and address != NULL_ADDRESS:
            header = record_storage.read(address, HEADER_SIZE)
            source_id, _, prev, _ = decode_header(header)
            assert source_id == 1
            address = prev
            count += 1
        assert count == state.sources[1].record_count
        record_storage.close()

    def test_recovery_without_close_loses_only_recent(self, tmp_path):
        """A 'crash' (no close()) loses at most the staged blocks."""
        loom = build_instance(tmp_path, 400, close=False)
        persisted = loom.record_log.log.persisted_tail
        state = recover(FileStorage(str(tmp_path / "records.log")))
        assert 0 < state.total_records <= 400
        # Everything that reached storage is recovered.
        assert state.record_bytes <= persisted
        loom.close()

    def test_unsummarized_records_counted(self, tmp_path):
        build_instance(tmp_path, 400)
        state = recover(
            FileStorage(str(tmp_path / "records.log")),
            FileStorage(str(tmp_path / "chunks.idx")),
        )
        # close() flushed everything, but the final partial chunk never
        # got a summary — those records are the unsummarized tail.
        assert state.unsummarized_records > 0
        summarized = sum(s.record_count for s in state.summaries)
        assert summarized + state.unsummarized_records == state.total_records

    def test_verification_detects_mismatched_summary(self, tmp_path):
        build_instance(tmp_path, 300)
        record_storage = FileStorage(str(tmp_path / "records.log"))
        chunk_storage = FileStorage(str(tmp_path / "chunks.idx"))
        # Corrupt: recover with verify against a *different* record log.
        other = MemoryStorage()
        from repro.core.record import encode_record

        other.append(encode_record(1, 1, NULL_ADDRESS, b"x" * 8))
        with pytest.raises(ValueError):
            recover(other, chunk_storage, verify=True)
        record_storage.close()
        chunk_storage.close()

    def test_empty_storage(self):
        state = recover(MemoryStorage())
        assert state.total_records == 0
        assert state.sources == {}
