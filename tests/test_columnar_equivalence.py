"""Property tests: the columnar fast paths are exact, not approximate.

Every vectorized hot path has a trivially-correct scalar counterpart that
remains in the tree as its oracle:

* :func:`repro.core.record.encode_batch` (columnar framing) must produce
  byte-identical output to :func:`repro.core.record.encode_batch_scalar`
  for arbitrary batch shapes — empty batches, single records, empty
  payloads, mixed lengths;
* :meth:`ChunkSummary.add_indexed_values_array` (vectorized bin folding)
  must leave the summary bit-identical to the scalar
  :meth:`ChunkSummary.add_indexed_values` fold, including the NaN /
  negative-zero / infinity cases that force its scalar fallback;
* storage ``read_view`` (mmap / extent zero-copy tier) must serve the
  same bytes as the copying ``read`` path;
* :meth:`RecordLog.region_columns` (columnar header decode) must agree
  field-for-field with the scalar record iterator, including for batches
  that span chunk and block boundaries.
"""

import math
import struct

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistogramSpec, LoomConfig, VirtualClock
from repro.core.hybridlog import NULL_ADDRESS
from repro.core.record import encode_batch, encode_batch_scalar
from repro.core.record_log import RecordLog
from repro.core.snapshot import Snapshot
from repro.core.storage import FileStorage, MemoryStorage
from repro.core.summary import ChunkSummary

from conftest import payload_value

SETTINGS = settings(max_examples=60, deadline=None)

payloads_st = st.lists(st.binary(min_size=0, max_size=48), max_size=50)


def _small_config(**overrides) -> LoomConfig:
    defaults = dict(
        chunk_size=512,
        record_block_size=1024,
        index_block_size=2048,
        timestamp_block_size=1024,
        timestamp_interval=8,
    )
    defaults.update(overrides)
    return LoomConfig(**defaults)


class TestEncodeBatchEquivalence:
    @SETTINGS
    @given(
        payloads=payloads_st,
        source_id=st.integers(0, 2**32 - 1),
        timestamp=st.integers(0, 2**64 - 1),
        base_address=st.integers(0, 2**40),
        prev_is_null=st.booleans(),
    )
    def test_byte_identity(
        self, payloads, source_id, timestamp, base_address, prev_is_null
    ):
        prev = NULL_ADDRESS if prev_is_null else max(0, base_address - 64)
        want = encode_batch_scalar(source_id, timestamp, prev, payloads, base_address)
        got = encode_batch(source_id, timestamp, prev, payloads, base_address)
        assert got == want

    def test_degenerate_shapes(self):
        """The edges the vectorized offset math must not get wrong."""
        cases = [
            [],  # empty batch
            [b""],  # single empty payload
            [b"x"],  # single record
            [b"", b"", b""],  # all-empty batch
            [b"a" * 8] * 5,  # fixed stride
            [b"", b"ab", b"", b"abcdef", b"z"],  # mixed, with empties
        ]
        for payloads in cases:
            want = encode_batch_scalar(7, 1234, NULL_ADDRESS, payloads, 96)
            got = encode_batch(7, 1234, NULL_ADDRESS, payloads, 96)
            assert got == want, payloads


values_st = st.lists(
    st.one_of(
        st.floats(allow_nan=False, allow_infinity=True, width=64),
        st.just(float("nan")),
        st.just(-0.0),
        st.just(0.0),
    ),
    min_size=0,
    max_size=80,
)


class TestSummaryFoldEquivalence:
    @SETTINGS
    @given(values=values_st, timestamp=st.integers(0, 10**12))
    def test_array_fold_matches_scalar_fold(self, values, timestamp):
        spec = HistogramSpec([-100.0, 0.0, 3.5, 1e6])
        bins = [spec.bin_of(v) for v in values]

        scalar = ChunkSummary(chunk_id=0, start_addr=0, end_addr=512)
        scalar.add_indexed_values(1, 2, zip(bins, values), timestamp)

        vectorized = ChunkSummary(chunk_id=0, start_addr=0, end_addr=512)
        vectorized.add_indexed_values_array(
            1,
            2,
            np.asarray(bins, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            timestamp,
        )
        # encode() byte-compares the folds bit-exactly (NaN-safe, and
        # distinguishes -0.0 sums from +0.0).
        assert vectorized.encode() == scalar.encode()

    def test_fallback_cases_are_exact(self):
        """NaN and -0.0 inputs take the scalar fallback and stay identical."""
        spec = HistogramSpec([1.0, 2.0])
        for values in (
            [float("nan"), 0.5, 3.0],
            [-0.0, -0.0],
            [float("inf"), float("-inf"), 1.5],
            [0.5, float("nan")],
        ):
            bins = [spec.bin_of(v) for v in values]
            scalar = ChunkSummary(chunk_id=0, start_addr=0, end_addr=512)
            scalar.add_indexed_values(3, 4, zip(bins, values), 42)
            vectorized = ChunkSummary(chunk_id=0, start_addr=0, end_addr=512)
            vectorized.add_indexed_values_array(
                3, 4, np.asarray(bins), np.asarray(values), 42
            )
            assert vectorized.encode() == scalar.encode(), values
            folded = vectorized.bins_for(3, 4)
            total = sum(s.count for s in folded.values())
            assert total == len(values)
            nan_free = [v for v in values if not math.isnan(v)]
            if nan_free:
                assert min(s.min for s in folded.values()) == min(nan_free)


class TestReadViewEquivalence:
    @SETTINGS
    @given(
        pieces=st.lists(st.binary(min_size=0, max_size=64), max_size=20),
        probes=st.lists(st.tuples(st.integers(0, 400), st.integers(0, 200)), max_size=10),
    )
    def test_memory_storage_views_match_reads(self, pieces, probes):
        storage = MemoryStorage()
        for piece in pieces:
            storage.append(piece)
        for address, length in probes:
            if address + length > storage.size:
                continue
            view = storage.read_view(address, length)
            if view is not None:  # None = spans extents; read() covers it
                assert bytes(view) == storage.read(address, length)

    def test_file_storage_mmap_matches_pread(self, tmp_path):
        storage = FileStorage(str(tmp_path / "log.bin"))
        try:
            data = bytes(range(256)) * 8
            storage.append(data[:512])
            # First view materializes the map; growth must trigger a remap.
            assert bytes(storage.read_view(0, 512)) == data[:512]
            storage.append(data[512:])
            for address, length in ((0, len(data)), (100, 1000), (2040, 8)):
                view = storage.read_view(address, length)
                assert view is not None
                assert bytes(view) == storage.read(address, length)
            # Truncation invalidates the map; stale tails must not be served.
            storage.truncate(512)
            view = storage.read_view(0, 512)
            if view is not None:
                assert bytes(view) == data[:512]
            assert storage.read_view(0, 513) is None
        finally:
            storage.close()


def _float_payload(value: float, pad: int) -> bytes:
    return struct.pack("<d", value) + bytes(pad)


class TestRegionColumnsEquivalence:
    @SETTINGS
    @given(
        shapes=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 40)), min_size=1, max_size=60
        )
    )
    def test_columnar_decode_matches_scalar_iterator(self, shapes):
        log = RecordLog(config=_small_config(), clock=VirtualClock())
        try:
            log.define_source(1)
            payloads = [_float_payload(float(v), pad) for v, pad in shapes]
            log.push_many(1, payloads)
            log.sync()
            snapshot = Snapshot.capture(log)
            columns = snapshot.region_columns(0, snapshot.watermark)
            scalar = list(log.iter_records_between(0, snapshot.watermark))
            assert columns is not None
            assert len(columns) == len(scalar)
            addresses = columns.addresses
            for i, record in enumerate(scalar):
                assert int(columns.source_ids[i]) == record.source_id
                assert int(columns.timestamps[i]) == record.timestamp
                assert int(columns.prev_addrs[i]) == record.prev_addr
                assert int(addresses[i]) == record.address
                assert bytes(columns.payload_view(i)) == bytes(record.payload)
        finally:
            log.close()

    def test_batch_spanning_chunk_and_block_boundaries(self):
        """One batch large enough to cross several chunks and spill blocks."""
        config = _small_config()  # chunk_size=512, record_block_size=1024
        loop = RecordLog(config=config, clock=VirtualClock())
        batched = RecordLog(config=config, clock=VirtualClock())
        try:
            spec = HistogramSpec([2.0, 5.0, 9.0])
            for log in (loop, batched):
                log.define_source(1)
                index_id = log.define_index(1, payload_value, spec)
            payloads = [_float_payload(float(i % 12), i % 23) for i in range(200)]
            for p in payloads:
                loop.push(1, p)
            batched.push_many(1, payloads)
            loop.sync()
            batched.sync()
            assert batched.log.tail_address == loop.log.tail_address
            assert batched.log.read(0, batched.log.tail_address) == loop.log.read(
                0, loop.log.tail_address
            )
            assert batched._active_summary.encode() == loop._active_summary.encode()
            # The region is big enough that it necessarily spans chunks.
            assert batched.log.tail_address > 3 * config.chunk_size
            snapshot = Snapshot.capture(batched)
            columns = snapshot.region_columns(0, snapshot.watermark)
            assert columns is not None and len(columns) == 200
            # Regression: all chunks here finalize at the same (virtual)
            # timestamp, so the summary window bisection must not drop the
            # earlier chunks of the tie — indexed_scan covers every record.
            from repro.core.operators import indexed_scan

            definition = batched.get_index(index_id)
            assert sum(1 for _ in indexed_scan(snapshot, 1, definition, 0, 0)) == 200
        finally:
            loop.close()
            batched.close()
