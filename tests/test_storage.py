"""Tests for the persistent storage backends of the hybrid logs."""

import pytest

from repro.core.errors import AddressError, ClosedError
from repro.core.storage import FileStorage, MemoryStorage, open_storage


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        store = MemoryStorage()
    else:
        store = FileStorage(str(tmp_path / "log.bin"))
    yield store
    store.close()


class TestStorageContract:
    def test_append_returns_sequential_addresses(self, storage):
        assert storage.append(b"abc") == 0
        assert storage.append(b"defg") == 3
        assert storage.size == 7

    def test_read_back_exact_bytes(self, storage):
        storage.append(b"hello")
        storage.append(b"world")
        assert storage.read(0, 5) == b"hello"
        assert storage.read(5, 5) == b"world"
        assert storage.read(3, 4) == b"lowo"

    def test_read_empty_range(self, storage):
        storage.append(b"xy")
        assert storage.read(1, 0) == b""

    def test_read_beyond_size_raises(self, storage):
        storage.append(b"abc")
        with pytest.raises(AddressError):
            storage.read(0, 4)
        with pytest.raises(AddressError):
            storage.read(3, 1)

    def test_negative_read_raises(self, storage):
        with pytest.raises(AddressError):
            storage.read(-1, 1)
        with pytest.raises(AddressError):
            storage.read(0, -1)

    def test_closed_storage_rejects_operations(self, storage):
        storage.append(b"abc")
        storage.close()
        with pytest.raises(ClosedError):
            storage.append(b"more")
        with pytest.raises(ClosedError):
            storage.read(0, 3)

    def test_large_append(self, storage):
        blob = bytes(range(256)) * 1024  # 256 KiB
        address = storage.append(blob)
        assert storage.read(address, len(blob)) == blob


class TestFileStorage:
    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "log.bin")
        store = FileStorage(path)
        store.append(b"persisted-data")
        store.sync()
        store.close()
        reopened = FileStorage(path)
        assert reopened.size == len(b"persisted-data")
        assert reopened.read(0, 9) == b"persisted"
        reopened.close()

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "log.bin")
        store = FileStorage(path)
        store.append(b"x")
        assert store.read(0, 1) == b"x"
        store.close()


class TestOpenStorage:
    def test_none_gives_memory(self):
        assert isinstance(open_storage(None), MemoryStorage)

    def test_path_gives_file(self, tmp_path):
        store = open_storage(str(tmp_path / "s.bin"))
        assert isinstance(store, FileStorage)
        store.close()
