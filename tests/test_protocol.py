"""Wire-protocol framing tests: roundtrips, torn frames, size guards."""

from __future__ import annotations

import pytest

from repro.core.errors import TransportError
from repro.core.operators import QueryResult, QueryStats
from repro.core.record import Record
from repro.daemon.protocol import (
    LEN_PREFIX,
    MAX_FRAME_BYTES,
    encode_frame,
    pack_payloads,
    pack_records,
    read_frame,
    result_from_wire,
    result_to_wire,
    split_frame,
    stats_from_wire,
    stats_to_wire,
    unpack_payloads,
    unpack_records,
)


def roundtrip(header, body=b""):
    frame = encode_frame(header, body)
    (total,) = LEN_PREFIX.unpack(frame[: LEN_PREFIX.size])
    assert total == len(frame) - LEN_PREFIX.size
    return split_frame(frame[LEN_PREFIX.size:])


class TestFraming:
    def test_header_and_body_roundtrip(self):
        header, body = roundtrip(
            {"op": "ingest", "seq": 7, "sizes": [3, 0, 2]}, b"abcde"
        )
        assert header == {"op": "ingest", "seq": 7, "sizes": [3, 0, 2]}
        assert body == b"abcde"

    def test_empty_body(self):
        header, body = roundtrip({"op": "health"})
        assert header["op"] == "health"
        assert body == b""

    def test_binary_body_never_json_escaped(self):
        raw = bytes(range(256)) * 4
        _, body = roundtrip({"op": "ingest"}, raw)
        assert body == raw

    def test_read_frame_via_read_exact(self):
        frame = encode_frame({"op": "scan"}, b"xyz")
        cursor = {"pos": 0}

        def read_exact(n):
            start = cursor["pos"]
            cursor["pos"] += n
            chunk = frame[start : start + n]
            if len(chunk) != n:
                raise TransportError("short read")
            return chunk

        header, body = read_frame(read_exact)
        assert header == {"op": "scan"}
        assert body == b"xyz"

    def test_torn_header_rejected(self):
        frame = encode_frame({"op": "scan", "padding": "x" * 50})
        payload = frame[LEN_PREFIX.size:]
        with pytest.raises(TransportError):
            split_frame(payload[:10])  # header announced longer than present

    def test_truncated_prefix_rejected(self):
        with pytest.raises(TransportError):
            split_frame(b"\x00")  # shorter than the header length prefix

    def test_garbage_header_rejected(self):
        from repro.daemon.protocol import HEADER_PREFIX

        junk = b"\xff\xfe not json"
        payload = HEADER_PREFIX.pack(len(junk)) + junk
        with pytest.raises(TransportError):
            split_frame(payload)

    def test_non_object_header_rejected(self):
        from repro.daemon.protocol import HEADER_PREFIX

        junk = b"[1,2,3]"
        payload = HEADER_PREFIX.pack(len(junk)) + junk
        with pytest.raises(TransportError):
            split_frame(payload)

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(TransportError):
            encode_frame({"op": "ingest"}, b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_oversized_announcement_refused_at_read(self):
        def read_exact(n):
            return LEN_PREFIX.pack(MAX_FRAME_BYTES + 1)

        with pytest.raises(TransportError):
            read_frame(read_exact)


class TestBatchBodies:
    def test_payloads_roundtrip(self):
        payloads = [b"abc", b"", b"\x00\xff", b"x" * 100]
        sizes, body = pack_payloads(payloads)
        assert sizes == [3, 0, 2, 100]
        assert unpack_payloads(sizes, body) == payloads

    def test_sizes_longer_than_body_rejected(self):
        with pytest.raises(TransportError):
            unpack_payloads([10], b"short")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(TransportError):
            unpack_payloads([2], b"abcdef")


class TestRecordBodies:
    def _records(self):
        return [
            Record(source_id=1, timestamp=100, prev_addr=7, payload=b"a", address=0),
            Record(source_id=1, timestamp=250, prev_addr=0, payload=b"bb" * 40, address=64),
            Record(source_id=1, timestamp=999, prev_addr=64, payload=b"", address=128),
        ]

    def test_roundtrip(self):
        records = self._records()
        out = unpack_records(pack_records(records), source_id=1)
        assert [(r.timestamp, r.address, r.payload) for r in out] == [
            (r.timestamp, r.address, bytes(r.payload)) for r in records
        ]
        # Back-pointers are meaningless off-host and are zeroed.
        assert all(r.prev_addr == 0 for r in out)

    def test_torn_entry_rejected(self):
        body = pack_records(self._records())
        with pytest.raises(TransportError):
            unpack_records(body[:-1])

    def test_torn_prefix_rejected(self):
        with pytest.raises(TransportError):
            unpack_records(b"\x00" * 5)


class TestResultWire:
    def test_stats_roundtrip_including_degraded(self):
        stats = QueryStats()
        stats.chunks_scanned = 5
        stats.degraded = True
        stats.missing_shards = ["node2"]
        out = stats_from_wire(stats_to_wire(stats))
        assert out.chunks_scanned == 5
        assert out.degraded is True
        assert out.missing_shards == ["node2"]

    def test_unknown_stats_keys_ignored(self):
        out = stats_from_wire({"chunks_scanned": 3, "not_a_field": 9})
        assert out.chunks_scanned == 3
        assert not hasattr(out, "not_a_field") or True

    def test_value_result_roundtrip(self):
        result = QueryResult(
            stats=QueryStats(), value=42.5, count=10, source="cpu"
        )
        header, body = result_to_wire(result)
        out = result_from_wire(header, body)
        assert out.value == 42.5
        assert out.count == 10
        assert out.source == "cpu"
        assert out.records is None

    def test_records_result_roundtrip(self):
        records = [
            Record(source_id=3, timestamp=t, prev_addr=0, payload=b"p", address=t)
            for t in (10, 20, 30)
        ]
        result = QueryResult(stats=QueryStats(), records=records, count=3)
        header, body = result_to_wire(result)
        out = result_from_wire(header, body)
        assert [r.timestamp for r in out.records] == [10, 20, 30]

    def test_record_count_mismatch_rejected(self):
        records = [
            Record(source_id=1, timestamp=1, prev_addr=0, payload=b"p", address=0)
        ]
        header, body = result_to_wire(
            QueryResult(stats=QueryStats(), records=records, count=1)
        )
        header["records"] = 2
        with pytest.raises(TransportError):
            result_from_wire(header, body)

    def test_bins_and_values_roundtrip(self):
        result = QueryResult(
            stats=QueryStats(), bins={0: 5, 3: 2}, values=[1.0, 2.5], count=7
        )
        header, body = result_to_wire(result)
        out = result_from_wire(header, body)
        assert out.bins == {0: 5, 3: 2}  # int keys survive JSON
        assert out.values == [1.0, 2.5]
