"""Tests for the OpenTelemetry-style exporter adapter (paper §5)."""

import numpy as np
import pytest

from repro.core.clock import micros
from repro.daemon import (
    MonitoringDaemon,
    OtelLoomExporter,
    OtelMetricPoint,
    OtelSpan,
)
from repro.daemon.otel import STATUS_ERROR, decode_span_payload


@pytest.fixture
def exporter():
    daemon = MonitoringDaemon()
    yield OtelLoomExporter(daemon), daemon
    daemon.close()


class TestSpanExport:
    def test_sources_created_lazily_per_span_name(self, exporter):
        exp, daemon = exporter
        exp.export_span(OtelSpan("GET /users", trace_id=1, duration_us=120.0))
        exp.export_span(OtelSpan("GET /orders", trace_id=2, duration_us=80.0))
        exp.export_span(OtelSpan("GET /users", trace_id=3, duration_us=95.0))
        names = set(daemon.source_names())
        assert "otel.span.GET /users" in names
        assert "otel.span.GET /orders" in names
        assert exp.spans_exported == 3
        assert daemon.source("otel.span.GET /users").records_received == 2

    def test_span_payload_roundtrip(self, exporter):
        exp, daemon = exporter
        span = OtelSpan("op", trace_id=0xABCDEF, duration_us=42.5,
                        status=STATUS_ERROR)
        exp.export_span(span)
        daemon.sync()
        handle = daemon.source("otel.span.op")
        records = daemon.loom.raw_scan(handle.source_id, (0, daemon.clock.now()))
        trace_id, duration, status = decode_span_payload(records[0].payload)
        assert (trace_id, duration, status) == (0xABCDEF, 42.5, STATUS_ERROR)

    def test_span_percentile_exact(self, exporter):
        exp, daemon = exporter
        rng = np.random.default_rng(4)
        durations = list(rng.lognormal(np.log(100), 0.8, size=1500))
        for i, duration in enumerate(durations):
            daemon.clock.advance(micros(50))
            exp.export_span(OtelSpan("rpc", trace_id=i, duration_us=float(duration)))
        daemon.sync()
        t_range = (0, daemon.clock.now())
        p99 = exp.span_percentile("rpc", t_range, 99.0)
        assert p99 == float(np.percentile(durations, 99.0, method="inverted_cdf"))

    def test_slow_spans_query(self, exporter):
        exp, daemon = exporter
        for i, duration in enumerate([10.0, 5000.0, 20.0, 8000.0]):
            daemon.clock.advance(micros(100))
            exp.export_span(OtelSpan("rpc", trace_id=i, duration_us=duration))
        daemon.sync()
        slow = exp.slow_spans("rpc", (0, daemon.clock.now()), threshold_us=1000.0)
        assert sorted(s.trace_id for s in slow) == [1, 3]
        assert all(s.duration_us >= 1000.0 for s in slow)
        assert all(s.name == "rpc" for s in slow)

    def test_unknown_span_name_percentile_raises(self, exporter):
        exp, daemon = exporter
        from repro.core.errors import LoomError

        with pytest.raises(LoomError):
            exp.span_percentile("never-seen", (0, 1), 50.0)


class TestMetricExport:
    def test_metric_sources_and_counts(self, exporter):
        exp, daemon = exporter
        for i in range(50):
            daemon.clock.advance(micros(10))
            exp.export_metric(OtelMetricPoint("cpu.util", float(i)))
        daemon.sync()
        assert exp.metrics_exported == 50
        handle = daemon.source("otel.metric.cpu.util")
        assert handle.records_received == 50

    def test_mixed_signals_coexist(self, exporter):
        exp, daemon = exporter
        exp.export_span(OtelSpan("op", trace_id=1, duration_us=10.0))
        exp.export_metric(OtelMetricPoint("mem.rss", 512.0))
        daemon.sync()
        assert daemon.loom.total_records == 2


class TestWarmRestart:
    """Exporter survival across a daemon reopen (satellite: §5.3 healing).

    Index UDFs are code and die with the old process; the exporter must
    re-attach them — lazily on the first post-restart query, or eagerly
    via :meth:`OtelLoomExporter.reattach`.
    """

    def _persisted_daemon(self, tmp_path, durations):
        from repro.core import LoomConfig

        cfg = LoomConfig(data_dir=str(tmp_path / "otel"))
        daemon = MonitoringDaemon(config=cfg)
        exp = OtelLoomExporter(daemon)
        for i, duration in enumerate(durations):
            daemon.clock.advance(micros(50))
            exp.export_span(OtelSpan("rpc", trace_id=i, duration_us=duration))
        source_id = daemon.source("otel.span.rpc").source_id
        daemon.close()
        return cfg, source_id

    def test_span_queries_work_after_reopen(self, tmp_path):
        durations = [10.0, 250.0, 4000.0, 75.0, 9000.0]
        cfg, source_id = self._persisted_daemon(tmp_path, durations)

        daemon = MonitoringDaemon.reopen(
            cfg, sources={"otel.span.rpc": source_id}
        )
        try:
            exp = OtelLoomExporter(daemon)
            t_range = (0, daemon.clock.now())
            # The reopened source came back indexless; the query self-heals.
            assert daemon.source("otel.span.rpc").indexes == {}
            p50 = exp.span_percentile("rpc", t_range, 50.0)
            assert p50 == float(
                np.percentile(durations, 50.0, method="inverted_cdf")
            )
            slow = exp.slow_spans("rpc", t_range, threshold_us=1000.0)
            assert sorted(s.trace_id for s in slow) == [2, 4]
        finally:
            daemon.close()

    def test_reattach_heals_eagerly_and_is_idempotent(self, tmp_path):
        cfg, source_id = self._persisted_daemon(tmp_path, [100.0, 200.0])

        daemon = MonitoringDaemon.reopen(
            cfg, sources={"otel.span.rpc": source_id}
        )
        try:
            exp = OtelLoomExporter(daemon)
            assert exp.reattach() == 1
            assert "duration" in daemon.source("otel.span.rpc").indexes
            assert exp.reattach() == 0  # nothing left to heal
        finally:
            daemon.close()

    def test_post_restart_exports_resume_on_healed_source(self, tmp_path):
        cfg, source_id = self._persisted_daemon(tmp_path, [100.0, 900.0])

        daemon = MonitoringDaemon.reopen(
            cfg, sources={"otel.span.rpc": source_id}
        )
        try:
            exp = OtelLoomExporter(daemon)
            daemon.clock.advance(micros(50))
            exp.export_span(OtelSpan("rpc", trace_id=9, duration_us=700.0))
            daemon.sync()
            t_range = (0, daemon.clock.now())
            slow = exp.slow_spans("rpc", t_range, threshold_us=500.0)
            # One pre-restart span and the fresh one, across the restart.
            assert sorted(s.trace_id for s in slow) == [1, 9]
        finally:
            daemon.close()
