"""The compressed cold tier: archive codec, migration, retention, and the
unified tiered-storage surface.

ACCEPTANCE scenarios for the tiered-storage API:

* the archive codec round-trips chunk regions *byte-identically* (framing
  and CRCs are deterministic functions of the columns);
* migrating finalized chunks into the archive changes no query answer,
  and the cold read path decompresses only the chunks a query actually
  needs (counter-backed: summary-only aggregates decompress nothing);
* a zero-copy scan view that outlives a migration pass raises a typed
  :class:`StaleViewError` naming the borrow site, and a rescan after the
  migration returns byte-identical records;
* retention (drop and downsample) makes retired data invisible while
  downsampled summaries keep distributive aggregates exact;
* a data directory with an archive reopens to the same answers, and the
  typed ``check_data_dir`` report covers all eight files.
"""

from __future__ import annotations

import struct
import warnings

import pytest

from repro.core.archive import (
    decode_chunk_region,
    encode_chunk_streams,
)
from repro.core.chunk_index import STATE_SUMMARY_ONLY
from repro.core.clock import VirtualClock
from repro.core.config import LoomConfig, RetentionPolicy, TierConfig
from repro.core.errors import AddressError, LoomError, StaleViewError
from repro.core.hybridlog import NULL_ADDRESS
from repro.core.loom import Loom
from repro.core.operators import QueryStats
from repro.core.record import encode_record
from repro.core.record_log import RecordLog
from repro.core.recovery import check_data_dir, fsck

_VALUE = struct.Struct("<d")
EDGES = [0.0, 25.0, 50.0, 75.0, 100.0]
ALL_TIME = (0, 2**62)


def _payload(value, pad=40):
    return _VALUE.pack(float(value)) + b"\x00" * pad


def _index_func(payload):
    return _VALUE.unpack_from(payload)[0]


def _tiered_config(tmp_path=None, **overrides):
    kwargs = dict(
        chunk_size=2048,
        record_block_size=4096,
        timestamp_interval=4,
        tier=TierConfig(migrate_high_watermark=4, migrate_low_watermark=1),
    )
    if tmp_path is not None:
        kwargs["data_dir"] = str(tmp_path)
    kwargs.update(overrides)
    return LoomConfig(**kwargs)


def _fill(loom, clock, count=600, sources=(1, 2)):
    """Push ``count`` float records round-robin over ``sources``."""
    index_ids = {}
    for sid in sources:
        loom.define_source(sid)
        index_ids[sid] = loom.define_index(sid, _index_func, EDGES)
    for i in range(count):
        sid = sources[i % len(sources)]
        loom.push(sid, _payload(i % 100))
        clock.advance(10)
    loom.sync()
    return index_ids


# ----------------------------------------------------------------------
# Codec: byte-identical round trips
# ----------------------------------------------------------------------
class TestCodec:
    def _roundtrip(self, region, start_addr=0):
        header, blob, count, flags = encode_chunk_streams(region, start_addr)
        rebuilt = decode_chunk_region(
            header, blob, start_addr, count, len(region), flags
        )
        assert rebuilt == region
        return header, blob

    def test_uniform_records_round_trip(self):
        region = b"".join(
            encode_record(7, 1_000 + 10 * i, NULL_ADDRESS if i == 0 else 28 * (i - 1), b"")
            for i in range(5)
        )
        self._roundtrip(region)

    def test_mixed_sources_and_payload_sizes(self):
        region = b""
        prev = {1: NULL_ADDRESS, 2: NULL_ADDRESS}
        ts = 5_000
        for i in range(40):
            sid = 1 + (i % 2)
            payload = bytes([i % 251]) * (i % 17)
            addr = len(region)
            region += encode_record(sid, ts, prev[sid], payload)
            prev[sid] = addr
            ts += (i * 37) % 113  # non-monotone deltas exercise zigzag
        self._roundtrip(region, start_addr=123 * 28)

    def test_empty_payloads_and_null_prevs(self):
        region = b"".join(
            encode_record(i + 1, 99, NULL_ADDRESS, b"") for i in range(8)
        )
        self._roundtrip(region)

    def test_fixed_width_payloads_transpose(self):
        from repro.core.archive import FLAG_TRANSPOSED

        region = b""
        for i in range(16):
            region += encode_record(3, 10 * i, NULL_ADDRESS, _VALUE.pack(float(i)))
        header, blob, count, flags = encode_chunk_streams(region, 0)
        assert flags & FLAG_TRANSPOSED
        assert decode_chunk_region(header, blob, 0, count, len(region), flags) == region

    def test_compression_beats_raw_on_telemetry_shapes(self):
        import zlib

        region = b""
        prev = NULL_ADDRESS
        for i in range(64):
            addr = len(region)
            region += encode_record(1, 1_000_000 + 250 * i, prev, _payload(i % 8))
            prev = addr
        header, blob, _count, _flags = encode_chunk_streams(region, 0)
        compressed = len(zlib.compress(header, 6)) + len(zlib.compress(blob, 6))
        assert compressed * 4 <= len(region)


# ----------------------------------------------------------------------
# Migration: answers unchanged, reads stay targeted
# ----------------------------------------------------------------------
class TestMigration:
    def test_migration_preserves_every_answer(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        index_ids = _fill(loom, clock)
        before_scan = [
            (r.address, r.timestamp, bytes(r.payload))
            for r in loom.scan(1, ALL_TIME).records
        ]
        before_sum = loom.aggregate(1, index_ids[1], ALL_TIME, "sum").value
        before_p90 = loom.aggregate(
            1, index_ids[1], ALL_TIME, "percentile", percentile=90.0
        ).value

        report = loom.migrate(force=True)
        assert report.chunks_migrated > 0
        assert report.compressed_bytes < report.raw_bytes
        assert loom.record_log.cold_boundary == report.cold_boundary > 0

        after_scan = [
            (r.address, r.timestamp, bytes(r.payload))
            for r in loom.scan(1, ALL_TIME).records
        ]
        assert after_scan == before_scan
        assert loom.aggregate(1, index_ids[1], ALL_TIME, "sum").value == before_sum
        assert (
            loom.aggregate(
                1, index_ids[1], ALL_TIME, "percentile", percentile=90.0
            ).value
            == before_p90
        )
        loom.close()

    def test_summary_only_aggregate_decompresses_nothing(self):
        """The cold tier's "summaries first" guarantee, counter-backed: a
        whole-range distributive aggregate over migrated data answers
        from resident summaries with zero archive decompressions."""
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        index_ids = _fill(loom, clock)
        loom.migrate(force=True)
        assert loom.record_log.cold_boundary > 0

        snapshot = loom.snapshot()
        stats = QueryStats()
        from repro.core.operators import indexed_aggregate

        index = loom.record_log.get_index(index_ids[1])
        agg = indexed_aggregate(
            snapshot, 1, index, 0, clock.now(), "count", stats=stats
        )
        assert agg.count == 300
        assert stats.cold_chunks_decompressed == 0

    def test_windowed_percentile_decompresses_only_target_chunks(self):
        """A percentile over a narrow cold window touches only the chunks
        overlapping that window — not the whole archive."""
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        index_ids = _fill(loom, clock)
        loom.migrate(force=True)
        archive = loom.record_log.archive
        total_chunks = archive.chunk_count
        assert total_chunks >= 8

        snapshot = loom.snapshot()
        stats = QueryStats()
        from repro.core.operators import indexed_aggregate

        index = loom.record_log.get_index(index_ids[1])
        # A window around one-tenth of ingested time, deep in the cold zone.
        t_mid = 1_000 + 600  # ~60 records in
        agg = indexed_aggregate(
            snapshot, 1, index, t_mid, t_mid + 500, "percentile",
            percentile=50.0, stats=stats,
        )
        assert agg.value is not None
        assert 0 < stats.cold_chunks_decompressed < total_chunks
        loom.close()

    def test_cold_reads_hit_the_decompression_cache(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock)
        loom.migrate(force=True)
        boundary = loom.record_log.cold_boundary
        stats = QueryStats()
        first = loom.record_log.read_record(0, stats)
        again = loom.record_log.read_record(0, QueryStats())
        assert bytes(first.payload) == bytes(again.payload)
        assert stats.cold_chunks_decompressed == 1
        assert boundary > 0
        loom.close()

    def test_migration_is_idempotent_without_new_chunks(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock)
        first = loom.migrate(force=True)
        second = loom.migrate(force=True)
        assert second.chunks_migrated == 0
        assert second.cold_boundary == first.cold_boundary
        loom.close()


# ----------------------------------------------------------------------
# Zero-copy views racing migration
# ----------------------------------------------------------------------
class TestViewsAcrossMigration:
    def test_migration_poisons_outstanding_scan_view(self, tmp_path):
        """ACCEPTANCE: a copy=False scan view taken before a migration
        pass is poisoned when the hot prefix is recycled under it —
        touching it raises StaleViewError naming the borrow site — and a
        rescan after the migration is byte-identical to the answer the
        view-based scan produced before it."""
        from repro.core import viewguard

        viewguard.activate()
        try:
            cfg = _tiered_config(
                tmp_path, tier=TierConfig(migrate_high_watermark=64, auto_migrate=False)
            )
            clock = VirtualClock(1_000)
            log = RecordLog(cfg, clock=clock)
            log.define_source(1)
            for i in range(600):
                log.push(1, _payload(i % 100))
                clock.advance(10)
            log.sync()
            # The mmap view tier serves only the fully persisted prefix;
            # pick the last chunk boundary below the persisted tail.
            persisted = log.log._storage.size
            scan_end = max(
                (
                    log.chunk_index.get(i).end_addr
                    for i in range(len(log.chunk_index))
                    if log.chunk_index.get(i).end_addr <= persisted
                ),
                default=0,
            )
            assert scan_end > 0
            records = list(log.iter_records_between(0, scan_end, copy=False))
            assert records
            before = [
                (r.address, r.timestamp, bytes(r.payload)) for r in records
            ]
            payload_view = records[0].payload

            report = log.migrate(force=True)
            assert report.chunks_migrated > 0

            with pytest.raises(StaleViewError) as exc_info:
                bytes(payload_view)
            assert exc_info.value.borrow_site is not None
            assert "iter_records_between" in exc_info.value.borrow_site

            after = [
                (r.address, r.timestamp, bytes(r.payload))
                for r in log.iter_records_between(0, scan_end)
            ]
            assert after == before
            log.close()
        finally:
            viewguard.deactivate()


# ----------------------------------------------------------------------
# Retention
# ----------------------------------------------------------------------
class TestRetention:
    def _loom_with_horizon(self, mode, keep_every=2, tmp_path=None):
        cfg = _tiered_config(
            tmp_path,
            retention=RetentionPolicy(
                horizon_ns=2_000, mode=mode, keep_every=keep_every
            ),
        )
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        index_ids = _fill(loom, clock)
        loom.migrate(force=True)
        return loom, clock, index_ids

    def test_drop_makes_old_data_invisible(self):
        loom, clock, index_ids = self._loom_with_horizon("drop")
        total_before = loom.aggregate(1, index_ids[1], ALL_TIME, "count").value
        report = loom.apply_retention()
        assert report.floor_addr > 0
        assert report.dropped_chunk_ids and not report.kept_chunk_ids
        after = loom.aggregate(1, index_ids[1], ALL_TIME, "count").value
        assert after < total_before
        # Retired addresses read as typed errors, not garbage.
        with pytest.raises(AddressError):
            loom.record_log.read_record(0)
        loom.close()

    def test_downsample_keeps_summary_aggregates_exact(self):
        loom, clock, index_ids = self._loom_with_horizon("downsample")
        before_count = loom.aggregate(1, index_ids[1], ALL_TIME, "count").value
        report = loom.apply_retention()
        assert report.kept_chunk_ids and report.dropped_chunk_ids
        index = loom.record_log.chunk_index
        # Dropped chunks' summaries are unreachable; kept ones answer.
        for cid in report.dropped_chunk_ids:
            assert index.summary_for_chunk(cid) is None
        dropped_source_1 = 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for summary in index.iter_persisted():
                if summary.chunk_id in report.dropped_chunk_ids:
                    info = summary.source_info(1)
                    dropped_source_1 += info.record_count if info else 0
        # The exact whole-range count = pre-retention count minus only the
        # records in fully dropped chunks (summary-only records still fold
        # in via their resident bins).
        after_count = loom.aggregate(1, index_ids[1], ALL_TIME, "count").value
        assert after_count == before_count - dropped_source_1
        # Scanning into the retired range degrades instead of erroring.
        stats_result = loom.scan(1, (0, 1_000 + 600))
        assert stats_result.stats.degraded
        loom.close()

    def test_retention_floor_is_monotone_across_passes(self):
        loom, clock, index_ids = self._loom_with_horizon("downsample")
        first = loom.apply_retention()
        for i in range(300):
            loom.push(1, _payload(i % 100))
            clock.advance(10)
        loom.sync()
        loom.migrate(force=True)
        second = loom.apply_retention()
        assert second.floor_addr >= first.floor_addr
        # Chunks kept by the first pass are not demoted by the second.
        kept_then = set(first.kept_chunk_ids)
        index = loom.record_log.chunk_index
        for cid in kept_then:
            assert index.state_for_chunk(cid) == STATE_SUMMARY_ONLY
        loom.close()

    def test_retention_requires_policy(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock, count=50)
        with pytest.raises(LoomError):
            loom.apply_retention()
        loom.close()


# ----------------------------------------------------------------------
# Reopen / recovery with an archive
# ----------------------------------------------------------------------
class TestReopenWithArchive:
    def test_reopen_restores_cold_boundary_and_answers(self, tmp_path):
        cfg = _tiered_config(tmp_path)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock)
        loom.migrate(force=True)
        boundary = loom.record_log.cold_boundary
        assert boundary > 0
        before = [
            (r.address, r.timestamp, bytes(r.payload))
            for r in loom.scan(1, ALL_TIME).records
        ]
        loom.close()

        reopened = Loom.open(cfg, clock=VirtualClock(10**7))
        assert reopened.record_log.cold_boundary == boundary
        after = [
            (r.address, r.timestamp, bytes(r.payload))
            for r in reopened.scan(1, ALL_TIME).records
        ]
        assert after == before
        reopened.close()

    def test_reopen_after_retention_restores_floor(self, tmp_path):
        cfg = _tiered_config(
            tmp_path,
            retention=RetentionPolicy(horizon_ns=2_000, mode="downsample", keep_every=2),
        )
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock)
        loom.migrate(force=True)
        report = loom.apply_retention()
        assert report.floor_addr > 0
        before = loom.scan(1, ALL_TIME)
        assert before.stats.degraded  # range reaches into dropped history
        before_records = [
            (r.address, r.timestamp, bytes(r.payload)) for r in before.records
        ]
        loom.close()

        reopened = Loom.open(cfg, clock=VirtualClock(10**7))
        assert reopened.record_log.retention_floor == report.floor_addr
        # Recovery reconstructs the same keep/drop decision per chunk.
        index = reopened.record_log.chunk_index
        for cid in report.kept_chunk_ids:
            assert index.state_for_chunk(cid) == STATE_SUMMARY_ONLY
        # Dropped chunks are not resident after recovery: their summaries
        # are unreachable, so no query path can route to them.
        for cid in report.dropped_chunk_ids:
            assert index.summary_for_chunk(cid) is None
        after = reopened.scan(1, ALL_TIME)
        assert after.stats.degraded
        after_records = [
            (r.address, r.timestamp, bytes(r.payload)) for r in after.records
        ]
        assert after_records == before_records
        # The recovered log keeps ingesting.
        reopened.define_source(1)
        addr = reopened.record_log.push(1, _payload(7.0))
        assert addr >= report.floor_addr
        reopened.close()

    def test_check_data_dir_reports_all_tiers(self, tmp_path):
        cfg = _tiered_config(
            tmp_path,
            retention=RetentionPolicy(horizon_ns=2_000, mode="drop"),
        )
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock)
        loom.migrate(force=True)
        loom.apply_retention()
        loom.close()

        report = check_data_dir(str(tmp_path))
        assert report.ok
        labels = {check.label for check in report.logs}
        assert "archive log" in labels
        state = report.state
        assert state is not None
        assert state.archived_chunks > 0
        assert state.retired_chunks > 0
        assert state.recycled_upto > 0
        assert state.retention_floor > 0
        assert state.archive_compressed_bytes < state.archive_raw_bytes

    def test_fsck_shim_warns_and_delegates(self, tmp_path):
        cfg = _tiered_config(tmp_path)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock, count=100)
        loom.close()
        with pytest.warns(DeprecationWarning, match="check_data_dir"):
            state = fsck(str(tmp_path))
        assert state.total_records == 100


# ----------------------------------------------------------------------
# Config and facade surface
# ----------------------------------------------------------------------
class TestTieredSurface:
    def test_flat_config_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="TierConfig"):
            cfg = LoomConfig(archive_enabled=True)
        assert cfg.tier is not None

    def test_flat_retention_kwargs_warn_and_fold(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cfg = LoomConfig(
                archive_enabled=True,
                retention_horizon_ns=10_000,
                retention_downsample=3,
            )
        messages = [str(w.message) for w in caught]
        assert any("RetentionPolicy" in m for m in messages)
        assert cfg.retention is not None
        assert cfg.retention.mode == "downsample"
        assert cfg.retention.keep_every == 3

    def test_retention_requires_tier(self):
        with pytest.raises(ValueError, match="tier"):
            LoomConfig(retention=RetentionPolicy(horizon_ns=1))

    def test_footprint_reports_per_tier_bytes(self):
        clock = VirtualClock(1_000)
        loom = Loom(
            _tiered_config(tier=TierConfig(auto_migrate=False)), clock=clock
        )
        _fill(loom, clock)
        pre = loom.footprint()
        assert pre["hot_bytes"] == pre["record_log_bytes"]
        assert pre["cold_bytes_compressed"] == 0
        loom.migrate(force=True)
        post = loom.footprint()
        assert post["recycled_upto"] > 0
        assert post["hot_bytes"] == post["record_log_bytes"] - post["recycled_upto"]
        assert 0 < post["cold_bytes_compressed"] < post["cold_bytes_raw"]
        assert post["archived_chunks"] > 0
        loom.close()

    def test_footprint_without_tier_keeps_zero_cold_keys(self):
        loom = Loom(LoomConfig(), clock=VirtualClock())
        loom.define_source(1)
        loom.push(1, b"x")
        fp = loom.footprint()
        assert fp["cold_bytes_raw"] == 0
        assert fp["archived_chunks"] == 0
        assert fp["retention_floor"] == 0
        loom.close()

    def test_migration_metrics_exported(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock)
        loom.migrate(force=True)
        snapshot = loom.metrics.snapshot()
        migrated = snapshot.get("loom.archive.chunks_migrated_total")
        ratio = snapshot.get("loom.archive.compression_ratio")
        assert migrated is not None and migrated.value > 0
        assert ratio is not None and ratio.value > 1.0
        loom.close()
