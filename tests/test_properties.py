"""Property-based tests (hypothesis) for the core invariants.

These pin down the contracts everything else relies on:

* the hybrid log is a faithful byte store under arbitrary append/flush
  interleavings;
* histogram binning partitions the value domain;
* chunk summaries are lossless for the statistics they claim to capture;
* Loom's query operators agree with naive reference computations for
  arbitrary data and query parameters (percentiles exactly match numpy's
  inverted CDF).
"""


import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import HistogramSpec, Loom, LoomConfig, VirtualClock
from repro.core.hybridlog import HybridLog
from repro.core.summary import BinStats

from conftest import payload_value, value_payload

# Conservative defaults: these tests build real engines per example.
SETTINGS = settings(max_examples=40, deadline=None)


class TestHybridLogProperties:
    @SETTINGS
    @given(
        pieces=st.lists(st.binary(min_size=0, max_size=64), max_size=60),
        block_size=st.integers(min_value=1, max_value=128),
    )
    def test_reads_return_what_was_written(self, pieces, block_size):
        log = HybridLog(block_size=block_size)
        addresses = [log.append(p) for p in pieces]
        for address, piece in zip(addresses, pieces):
            assert log.read(address, len(piece)) == piece
        # The whole log equals the concatenation.
        joined = b"".join(pieces)
        assert log.read(0, log.tail_address) == joined

    @SETTINGS
    @given(
        pieces=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=40),
        block_size=st.integers(min_value=1, max_value=64),
    )
    def test_close_persists_everything(self, pieces, block_size):
        log = HybridLog(block_size=block_size)
        for p in pieces:
            log.append(p)
        log.close()
        assert log.persisted_tail == log.tail_address
        assert log.read(0, log.tail_address) == b"".join(pieces)


class TestHistogramProperties:
    @SETTINGS
    @given(
        edges=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        value=st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
    )
    def test_bin_of_is_consistent_with_bin_range(self, edges, value):
        spec = HistogramSpec(sorted(edges))
        bin_idx = spec.bin_of(value)
        lo, hi = spec.bin_range(bin_idx)
        assert lo <= value < hi or (value == lo == hi)

    @SETTINGS
    @given(
        edges=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        v_min=st.floats(min_value=-1e7, max_value=1e7, allow_nan=False),
        width=st.floats(min_value=0, max_value=1e7, allow_nan=False),
    )
    def test_overlapping_bins_cover_all_in_range_values(self, edges, v_min, width):
        spec = HistogramSpec(sorted(edges))
        v_max = v_min + width
        overlapping = set(spec.bins_overlapping(v_min, v_max))
        # Any value inside the query range must fall in an overlapping bin.
        for probe in (v_min, v_max, (v_min + v_max) / 2):
            assert spec.bin_of(probe) in overlapping
        # Fully-inside bins are a subset of overlapping bins.
        assert set(spec.bins_fully_inside(v_min, v_max)) <= overlapping


class TestBinStatsProperties:
    @SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        split=st.integers(min_value=0, max_value=50),
    )
    def test_merge_equals_bulk_update(self, values, split):
        split = min(split, len(values))
        bulk = BinStats()
        for i, v in enumerate(values):
            bulk.update(v, i)
        left, right = BinStats(), BinStats()
        for i, v in enumerate(values[:split]):
            left.update(v, i)
        for j, v in enumerate(values[split:]):
            right.update(v, split + j)
        left.merge(right)
        assert left.count == bulk.count
        # Sums accumulate in different orders; FP addition is not
        # associative, so compare with a tight relative tolerance.
        scale = max(1.0, *(abs(v) for v in values))
        assert abs(left.sum - bulk.sum) <= 1e-9 * scale
        assert left.min == bulk.min
        assert left.max == bulk.max
        assert (left.t_min, left.t_max) == (bulk.t_min, bulk.t_max)


def build_loom(values, edges):
    clock = VirtualClock()
    loom = Loom(
        LoomConfig(chunk_size=256, record_block_size=1024, timestamp_interval=4),
        clock=clock,
    )
    loom.define_source(1)
    index_id = loom.define_index(1, payload_value, HistogramSpec(edges))
    timestamps = []
    for v in values:
        timestamps.append(clock.now())
        loom.push(1, value_payload(v))
        clock.advance(997)
    loom.sync()
    return loom, index_id, timestamps, clock


VALUES = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=300,
)
EDGES = st.lists(
    st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=6,
    unique=True,
)


class TestQueryProperties:
    @SETTINGS
    @given(values=VALUES, edges=EDGES, percentile=st.floats(0.0, 100.0))
    def test_percentile_matches_numpy(self, values, edges, percentile):
        loom, index_id, timestamps, clock = build_loom(values, sorted(edges))
        result = loom.indexed_aggregate(
            1, index_id, (0, clock.now()), "percentile", percentile=percentile
        )
        expected = float(np.percentile(values, percentile, method="inverted_cdf"))
        assert result.value == expected
        loom.close()

    @SETTINGS
    @given(
        values=VALUES,
        edges=EDGES,
        v_lo=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        v_width=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_indexed_scan_equals_naive_filter(self, values, edges, v_lo, v_width):
        loom, index_id, timestamps, clock = build_loom(values, sorted(edges))
        v_hi = v_lo + v_width
        records = loom.indexed_scan(1, index_id, (0, clock.now()), (v_lo, v_hi))
        got = sorted(payload_value(r.payload) for r in records)
        expected = sorted(v for v in values if v_lo <= v <= v_hi)
        assert got == expected
        loom.close()

    @SETTINGS
    @given(values=VALUES, edges=EDGES, data=st.data())
    def test_raw_scan_time_window_equals_naive_filter(self, values, edges, data):
        loom, index_id, timestamps, clock = build_loom(values, sorted(edges))
        t_lo = data.draw(st.integers(min_value=0, max_value=clock.now()))
        t_hi = data.draw(st.integers(min_value=t_lo, max_value=clock.now()))
        records = loom.raw_scan(1, (t_lo, t_hi))
        got = sorted(payload_value(r.payload) for r in records)
        expected = sorted(
            v for v, t in zip(values, timestamps) if t_lo <= t <= t_hi
        )
        assert got == expected
        loom.close()

    @SETTINGS
    @given(values=VALUES, edges=EDGES)
    def test_distributive_aggregates_match_reference(self, values, edges):
        loom, index_id, timestamps, clock = build_loom(values, sorted(edges))
        t = (0, clock.now())
        assert loom.indexed_aggregate(1, index_id, t, "count").value == len(values)
        assert loom.indexed_aggregate(1, index_id, t, "min").value == min(values)
        assert loom.indexed_aggregate(1, index_id, t, "max").value == max(values)
        total = loom.indexed_aggregate(1, index_id, t, "sum").value
        assert total == float(np.sum(np.asarray(values), dtype=np.float64)) or abs(
            total - sum(values)
        ) <= 1e-6 * max(1.0, abs(sum(values)))
        loom.close()
