"""Shared fixtures for the Loom reproduction test suite."""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.core import (
    HistogramSpec,
    Loom,
    LoomConfig,
    VirtualClock,
)

if os.environ.get("LOOMSAN") == "1":
    # Sanitized mode: every RecordLog in the whole suite runs against a
    # trivially-correct shadow model, with differential oracles at each
    # sync (cheap) and close (full).  See DESIGN.md section 9.
    from repro.core.sanitizer import install as _loomsan_install

    _loomsan_install()

VALUE_STRUCT = struct.Struct("<d")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On test failure, dump every live loomscope registry.

    Gated by ``LOOM_STATS_DUMP=<path>``: CI's faults matrix sets it and
    uploads the file as an artifact when a scenario fails, so the
    Prometheus-style ``stats`` view of each Loom alive at the moment of
    failure (flush retries, reader fallbacks, recovery phases) rides
    along with the red build.  Appends one section per failing test.
    """
    outcome = yield
    report = outcome.get_result()
    dump_path = os.environ.get("LOOM_STATS_DUMP")
    if not dump_path or report.when != "call" or not report.failed:
        return
    from repro.core.metrics import dump_live_registries

    try:
        text = dump_live_registries()
    except Exception as exc:  # diagnostics must never mask the failure
        text = f"(stats dump failed: {exc})"
    with open(dump_path, "a", encoding="utf-8") as f:
        f.write(f"### {item.nodeid}\n{text or '(no live registries)'}\n\n")
    # Network tests: also dump the packet traces of every live
    # fault-injecting transport, so a red run ships the exact byte-level
    # schedule (sends, drops, torn frames) that produced it.
    try:
        from repro.daemon.transport import dump_live_traces

        traces = dump_live_traces()
    except Exception as exc:
        traces = f"(packet trace dump failed: {exc})"
    if traces:
        with open(dump_path, "a", encoding="utf-8") as f:
            f.write(f"### {item.nodeid} packet traces\n{traces}\n\n")
    # Model-checker counterexamples (loommc exploration or conformance
    # violations noted in this process): each section is a replayable
    # JSON trace — feed it to `loommc replay <file>`.
    try:
        from repro.core.modelcheck import dump_live_counterexamples

        counterexamples = dump_live_counterexamples()
    except Exception as exc:
        counterexamples = f"(counterexample dump failed: {exc})"
    if counterexamples:
        with open(dump_path, "a", encoding="utf-8") as f:
            f.write(
                f"### {item.nodeid} loommc counterexamples\n"
                f"{counterexamples}\n\n"
            )


@pytest.fixture(autouse=True)
def _loommc_conformance():
    """Refinement check: every packet trace a test produces must conform
    to the abstract ingest model (DESIGN.md section 13).

    Snapshots the live fault-transport set before the test, then runs
    loommc's conformance rules over the traces of transports the test
    created.  A violation fails the test — the network suite doubles as
    a continuous model-to-code conformance proof.
    """
    try:
        from repro.daemon.transport import _LIVE_FAULT_TRANSPORTS
        from tools.loommc.conformance import check_transport
    except ImportError:  # tools/ not importable in this layout: skip
        yield
        return
    before = {id(t) for t in list(_LIVE_FAULT_TRANSPORTS)}
    yield
    violations = []
    for transport in list(_LIVE_FAULT_TRANSPORTS):
        if id(transport) in before:
            continue
        violations.extend(
            check_transport(transport, origin=f"transport-{id(transport):x}")
        )
    if violations:
        pytest.fail(
            "packet trace does not conform to the ingest protocol model:\n"
            + "\n\n".join(cx.render() for cx in violations),
            pytrace=False,
        )


def value_payload(value: float) -> bytes:
    """Minimal test payload: a single little-endian double."""
    return VALUE_STRUCT.pack(value)


def payload_value(payload: bytes) -> float:
    """Index UDF matching :func:`value_payload`."""
    return VALUE_STRUCT.unpack_from(payload)[0]


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def small_config() -> LoomConfig:
    """Tiny chunks/blocks so tests cross many chunk and block boundaries."""
    return LoomConfig(
        chunk_size=512,
        record_block_size=4096,
        index_block_size=2048,
        timestamp_block_size=1024,
        timestamp_interval=8,
    )


@pytest.fixture
def loom(small_config, clock) -> Loom:
    instance = Loom(small_config, clock=clock)
    yield instance
    instance.close()


@pytest.fixture
def indexed_loom(loom, clock):
    """A Loom with one source, one value index, and 2,000 known values.

    Returns ``(loom, source_id, index_id, values, timestamps)``; records
    are spaced 1 µs apart in virtual time starting at t=0.
    """
    source_id = 1
    loom.define_source(source_id)
    index_id = loom.define_index(
        source_id, payload_value, HistogramSpec([1.0, 10.0, 100.0, 1000.0])
    )
    rng = np.random.default_rng(1234)
    values = list(rng.lognormal(mean=np.log(20.0), sigma=1.2, size=2000))
    timestamps = []
    for value in values:
        timestamps.append(clock.now())
        loom.push(source_id, value_payload(value))
        clock.advance(1000)
    loom.sync()
    return loom, source_id, index_id, values, timestamps
