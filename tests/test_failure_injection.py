"""Failure injection: storage faults must surface, never corrupt.

Errors should never pass silently: a failing flush must raise (in sync
mode immediately, in threaded mode on the next append), reads past
injected corruption must raise, and a Loom instance whose storage dies
must refuse further ingest rather than silently dropping data — dropping
is the one thing Loom promises not to do.
"""

import pytest

from repro.core import Loom, LoomConfig
from repro.core.errors import StorageError
from repro.core.hybridlog import HybridLog
from repro.core.storage import MemoryStorage, Storage

pytestmark = pytest.mark.faults


class FailingStorage(Storage):
    """MemoryStorage that starts failing after ``fail_after`` bytes."""

    def __init__(self, fail_after: int) -> None:
        self._inner = MemoryStorage()
        self.fail_after = fail_after
        self.failed = False

    def append(self, data: bytes) -> int:
        if self._inner.size + len(data) > self.fail_after:
            self.failed = True
            raise StorageError("injected: device full")
        return self._inner.append(data)

    def read(self, address: int, length: int) -> bytes:
        return self._inner.read(address, length)

    @property
    def size(self) -> int:
        return self._inner.size

    def close(self) -> None:
        self._inner.close()


class TestHybridLogFaults:
    def test_sync_flush_failure_raises_immediately(self):
        storage = FailingStorage(fail_after=16)
        log = HybridLog(storage=storage, block_size=16)
        log.append(b"x" * 16)  # first block flushes fine
        with pytest.raises(StorageError):
            log.append(b"y" * 16)  # second flush hits the fault
        assert storage.failed

    def test_threaded_flush_failure_surfaces_on_later_append(self):
        storage = FailingStorage(fail_after=16)
        log = HybridLog(storage=storage, block_size=16, threaded_flush=True)
        log.append(b"x" * 16)
        # The async flush of block 2 fails; the error must surface on a
        # subsequent append rather than vanish in the worker thread.
        with pytest.raises(StorageError):
            for _ in range(64):
                log.append(b"y" * 16)

    def test_close_failure_raises(self):
        storage = FailingStorage(fail_after=4)
        log = HybridLog(storage=storage, block_size=64)
        log.append(b"x" * 8)  # staged only
        with pytest.raises(StorageError):
            log.close()

    def test_data_before_fault_remains_readable(self):
        storage = FailingStorage(fail_after=16)
        log = HybridLog(storage=storage, block_size=16)
        log.append(b"a" * 16)
        try:
            log.append(b"b" * 16)
        except StorageError:
            pass
        assert log.read(0, 16) == b"a" * 16


class TestLoomUnderStorageFaults:
    def test_push_raises_not_drops(self, clock):
        """When the record log's storage dies, push must raise — data is
        never silently dropped (the Figure 11 completeness contract)."""
        config = LoomConfig(chunk_size=256, record_block_size=256)
        loom = Loom(config, clock=clock)
        # Swap in a failing backend under the record log.
        loom.record_log.log._storage = FailingStorage(fail_after=512)
        loom.define_source(1)
        pushed = 0
        with pytest.raises(StorageError):
            for i in range(1000):
                loom.push(1, b"p" * 40)
                pushed += 1
        # Everything acknowledged before the fault is still queryable.
        loom.sync()
        records = loom.raw_scan(1, (0, 2**63 - 1))
        assert len(records) == pushed

    def test_failed_instance_keeps_failing_loud(self, clock):
        config = LoomConfig(chunk_size=256, record_block_size=128)
        loom = Loom(config, clock=clock)
        loom.record_log.log._storage = FailingStorage(fail_after=128)
        loom.define_source(1)
        with pytest.raises(StorageError):
            for _ in range(100):
                loom.push(1, b"x" * 32)
        with pytest.raises(StorageError):
            for _ in range(100):
                loom.push(1, b"x" * 32)
