"""Concurrency stress: queries racing live ingest (paper §4.4, §5.5).

Loom's read path takes no locks: readers snapshot watermarks, seqlock-copy
staging blocks, and fall back to storage when a block recycles mid-copy.
These tests run a writer thread at full speed with reader threads issuing
real queries the whole time, and assert that every observed result is
consistent (counts monotone, aggregates exact for pinned snapshots, no
torn records) — on both the in-memory and threaded-flush configurations.
"""

import threading

import pytest

from repro.core import HistogramSpec, Loom, LoomConfig, MonotonicClock

from conftest import payload_value, value_payload


def run_stress(threaded_flush: bool, n_records: int = 4000, readers: int = 2):
    config = LoomConfig(
        chunk_size=1024,
        record_block_size=4096,
        timestamp_interval=16,
        threaded_flush=threaded_flush,
    )
    loom = Loom(config, clock=MonotonicClock())
    loom.define_source(1)
    index_id = loom.define_index(1, payload_value, HistogramSpec([100.0, 500.0]))

    errors = []
    done = threading.Event()

    def reader():
        last_count = 0
        while not done.is_set():
            try:
                snap = loom.snapshot()
                t_range = (0, 2**63 - 1)
                result = loom.indexed_aggregate(
                    1, index_id, t_range, "count", snapshot=snap
                )
                count = int(result.value or 0)
                if count < last_count:
                    errors.append(f"count regressed: {count} < {last_count}")
                    return
                last_count = count
                # Values are i % 1000; any record outside that is torn.
                for record in loom.indexed_scan(
                    1, index_id, t_range, (500.0, float("inf")), snapshot=snap
                )[:50]:
                    value = payload_value(record.payload)
                    if not 0 <= value < 1000:
                        errors.append(f"torn value: {value}")
                        return
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"reader raised: {exc!r}")
                return

    threads = [threading.Thread(target=reader) for _ in range(readers)]
    for t in threads:
        t.start()
    for i in range(n_records):
        loom.push(1, value_payload(float(i % 1000)))
    loom.sync()
    done.set()
    for t in threads:
        t.join()
    return loom, index_id, errors


class TestConcurrentQueries:
    @pytest.mark.parametrize("threaded_flush", [False, True])
    def test_readers_never_observe_inconsistency(self, threaded_flush):
        loom, index_id, errors = run_stress(threaded_flush)
        assert errors == []
        # Final state is complete and exact.
        result = loom.indexed_aggregate(1, index_id, (0, 2**63 - 1), "count")
        assert result.value == 4000.0
        loom.close()

    def test_snapshot_results_stable_under_ingest(self):
        """A pinned snapshot must answer identically no matter how much
        ingest happens after it (repeatable reads)."""
        config = LoomConfig(chunk_size=1024, record_block_size=4096)
        loom = Loom(config, clock=MonotonicClock())
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([100.0]))
        for i in range(1000):
            loom.push(1, value_payload(float(i)))
        loom.sync()
        snap = loom.snapshot()
        t_range = (0, 2**63 - 1)
        first = loom.indexed_aggregate(1, index_id, t_range, "sum", snapshot=snap)
        for i in range(2000):
            loom.push(1, value_payload(99999.0))
        loom.sync()
        second = loom.indexed_aggregate(1, index_id, t_range, "sum", snapshot=snap)
        assert first.value == second.value
        assert first.count == second.count == 1000
        loom.close()

    def test_many_block_recycles_with_concurrent_reads(self):
        """Tiny blocks force constant recycling; a reader re-reading old
        addresses must always get the same bytes via storage fallback."""
        config = LoomConfig(
            chunk_size=256, record_block_size=512, threaded_flush=True
        )
        loom = Loom(config, clock=MonotonicClock())
        loom.define_source(1)
        addresses = []
        expected = []
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                n = len(addresses)
                for idx in range(max(0, n - 20), n):
                    record = loom.record_log.read_record(addresses[idx])
                    if payload_value(record.payload) != expected[idx]:
                        errors.append(idx)
                        return

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(3000):
            value = float(i)
            addresses.append(loom.push(1, value_payload(value)))
            expected.append(value)
        done.set()
        thread.join()
        loom.close()
        assert errors == []
        # The stress actually exercised the fallback path.
        assert loom.record_log.log.stats.block_flushes > 50
