"""End-to-end integration: the Redis case study (paper §2.1, Figures 3, 12).

Replays the full three-phase workload into Loom through the monitoring
daemon and runs the paper's drill-down: find the slow requests, correlate
them with slow recvfrom syscalls, and dump the packets around them to find
the mangled destination ports.  Also demonstrates the Figure 3 claim that
a sampled store cannot support this investigation.
"""

import pytest

from repro.core.clock import millis, seconds
from repro.core.histogram import exponential_edges
from repro.daemon import MonitoringDaemon
from repro.analysis import correlate_windows, records_above_percentile
from repro.workloads import RedisCaseStudy, events, uniform_sample

SCALE = 5e-4
DURATION = 5.0


@pytest.fixture(scope="module")
def ingested():
    workload = RedisCaseStudy(scale=SCALE, phase_duration_s=DURATION, seed=31)
    daemon = MonitoringDaemon()
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("packet", events.SRC_PACKET)
    daemon.add_index(
        "app", "latency", events.latency_value, exponential_edges(10.0, 10_000.0, 16)
    )
    daemon.add_index(
        "syscall", "latency", events.latency_value, exponential_edges(1.0, 10_000.0, 16)
    )
    phases = workload.generate_all()
    total = 0
    for phase in phases:
        total += daemon.replay(phase.records)
    yield workload, daemon, phases, total
    daemon.close()


class TestCompleteness:
    def test_all_records_captured(self, ingested):
        workload, daemon, phases, total = ingested
        assert total == sum(p.record_count for p in phases)
        assert daemon.loom.total_records == total

    def test_per_source_counts(self, ingested):
        workload, daemon, phases, _ = ingested
        expected = {}
        for phase in phases:
            for sid, count in phase.counts_by_source().items():
                expected[sid] = expected.get(sid, 0) + count
        for sid, count in expected.items():
            assert daemon.loom.source_record_count(sid) == count


class TestDrillDown:
    def test_phase1_style_tail_query(self, ingested):
        """P1: records above the high percentile of app latency."""
        workload, daemon, phases, _ = ingested
        t_range = (0, daemon.clock.now())
        total_app = daemon.loom.source_record_count(events.SRC_APP)
        # Percentile chosen so the expected tail is exactly the needles.
        needles = phases[2].needles
        pct = 100.0 * (1.0 - len(needles) / total_app)
        threshold, records = records_above_percentile(
            daemon.loom,
            events.SRC_APP,
            daemon.index_id("app", "latency"),
            t_range,
            pct,
        )
        found_ids = {events.latency_op_id(r.payload) for r in records}
        needle_ids = {n.request_op_id for n in needles}
        assert needle_ids <= found_ids
        assert len(records) <= 2 * len(needles)

    def test_phase2_syscall_correlation(self, ingested):
        """P2: every slow request has a slow recvfrom just before it."""
        workload, daemon, phases, _ = ingested
        needles = phases[2].needles
        anchors = []
        for needle in needles:
            got = daemon.loom.raw_scan(
                events.SRC_APP,
                (needle.request_time_ns, needle.request_time_ns),
            )
            assert len(got) == 1
            anchors.append(got[0])
        report = correlate_windows(
            daemon.loom,
            anchors,
            events.SRC_SYSCALL,
            window_before_ns=millis(1),
            window_after_ns=0,
            predicate=lambda r: (
                events.latency_kind(r.payload) == events.SYS_RECVFROM
                and events.latency_value(r.payload) > 10_000.0
            ),
        )
        assert report.correlated_count == len(needles)

    def test_phase3_packet_dump_finds_mangled_ports(self, ingested):
        """P3: the 'TCP packet dump' around each slow request contains the
        mangled packet — the unknown-unknown of §2.1."""
        workload, daemon, phases, _ = ingested
        needles = phases[2].needles
        for needle in needles:
            window = (
                needle.request_time_ns - seconds(5),
                needle.request_time_ns + seconds(5),
            )
            packets = daemon.loom.raw_scan(events.SRC_PACKET, window)
            mangled = [
                p
                for p in packets
                if events.unpack_packet(p.payload)[1] == events.MANGLED_PORT
            ]
            assert any(
                events.unpack_packet(p.payload)[4] == needle.packet_seq
                for p in mangled
            )

    def test_mangled_packets_found_by_exact_match_index(self, ingested):
        """A single-bin histogram emulates an exact-match index (§6.4)."""
        workload, daemon, phases, _ = ingested
        index_id = daemon.add_index(
            "packet",
            "dst-port",
            events.packet_dst_port,
            [float(events.MANGLED_PORT), float(events.MANGLED_PORT + 1)],
        )
        # Index only covers new data (§5.3) — replay one more needle-free
        # check: query over the indexed window returns nothing since all
        # mangled packets predate the index.
        t_range = (0, daemon.clock.now())
        records = daemon.loom.indexed_scan(
            events.SRC_PACKET,
            index_id,
            t_range,
            (float(events.MANGLED_PORT), float(events.MANGLED_PORT)),
        )
        got_ports = {events.unpack_packet(r.payload)[1] for r in records}
        assert got_ports <= {events.MANGLED_PORT}


class TestSamplingFailsTheInvestigation:
    def test_sampled_store_loses_the_needles(self, ingested):
        """Figure 3: a 10% uniform sample cannot support the correlation —
        most slow requests and essentially all mangled packets are gone."""
        workload, daemon, phases, _ = ingested
        phase3 = phases[2]
        kept = uniform_sample(phase3.records, 0.1, seed=17)
        needle_ids = {n.request_op_id for n in phase3.needles}
        mangled_seqs = {n.packet_seq for n in phase3.needles}
        kept_needles = {
            events.latency_op_id(p)
            for _, sid, p in kept
            if sid == events.SRC_APP and events.latency_op_id(p) in needle_ids
        }
        kept_mangled = {
            events.unpack_packet(p)[4]
            for _, sid, p in kept
            if sid == events.SRC_PACKET
            and events.unpack_packet(p)[1] == events.MANGLED_PORT
        }
        # The correlation requires BOTH the slow request and its packet;
        # with 10% sampling the expected joint survival is 1%.
        joint = sum(
            1
            for n in phase3.needles
            if n.request_op_id in kept_needles and n.packet_seq in kept_mangled
        )
        assert joint <= 1
        # Loom, capturing everything, retains all 6 of each.
        assert len(needle_ids) == 6 and len(mangled_seqs) == 6
