"""Edge cases across the core: speculative reads, bulk decodes spanning
blocks, queries against empty/closed sources, extreme time ranges, and
large/odd payloads."""

import pytest

from repro.core import (
    HistogramSpec,
    Loom,
    LoomConfig,
    QueryStats,
)
from repro.core.errors import AddressError
from repro.core.hybridlog import HybridLog

from conftest import payload_value, value_payload


class TestReadUpto:
    def test_clamps_to_tail(self):
        log = HybridLog(block_size=64)
        log.append(b"0123456789")
        assert log.read_upto(0, 100) == b"0123456789"
        assert log.read_upto(5, 100) == b"56789"
        assert log.read_upto(10, 100) == b""

    def test_beyond_tail_raises(self):
        log = HybridLog(block_size=64)
        log.append(b"abc")
        with pytest.raises(AddressError):
            log.read_upto(4, 10)

    def test_spans_storage_and_memory(self):
        log = HybridLog(block_size=8)
        log.append(b"a" * 8)  # flushed
        log.append(b"b" * 4)  # staged
        assert log.read_upto(6, 100) == b"aabbbb"


class TestBulkRegionDecode:
    def test_records_spanning_blocks_decode_correctly(self, clock):
        """Bulk region decode must survive records split across staging
        blocks and across the storage/memory boundary."""
        config = LoomConfig(chunk_size=128, record_block_size=64)
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        payloads = [bytes([i]) * (20 + i % 50) for i in range(60)]
        for p in payloads:
            loom.push(1, p)
            clock.advance(10)
        loom.sync()
        records = list(
            loom.record_log.iter_records_between(0, loom.record_log.log.watermark)
        )
        assert [r.payload for r in records] == payloads
        loom.close()

    def test_payload_larger_than_speculative_read(self, clock):
        """Payloads beyond the inline-read window need the two-step path."""
        config = LoomConfig(chunk_size=4096, record_block_size=8192)
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        big = bytes(range(256)) * 4  # 1024 B > _INLINE_READ
        address = loom.push(1, big)
        loom.sync()
        assert loom.record_log.read_record(address).payload == big
        loom.close()


class TestDegenerateQueries:
    def test_scan_source_with_no_records(self, loom):
        loom.define_source(1)
        loom.define_source(2)
        loom.push(2, value_payload(1.0))
        loom.sync()
        assert loom.raw_scan(1, (0, 2**62)) == []

    def test_indexed_scan_before_any_chunk_finalizes(self, clock):
        """All data in the active chunk: only the unindexed scan runs."""
        config = LoomConfig(chunk_size=1 << 20)  # one giant chunk
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([10.0]))
        for i in range(100):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        stats = QueryStats()
        records = loom.indexed_scan(
            1, index_id, (0, clock.now()), (50.0, float("inf")), stats=stats
        )
        assert len(records) == 50
        assert stats.summaries_examined == 0  # nothing finalized yet
        loom.close()

    def test_zero_width_time_range_exact_hit(self, indexed_loom):
        loom, sid, index_id, values, timestamps = indexed_loom
        t = timestamps[100]
        records = loom.raw_scan(sid, (t, t))
        assert len(records) == 1
        assert records[0].timestamp == t

    def test_huge_time_range(self, indexed_loom):
        loom, sid, index_id, values, _ = indexed_loom
        records = loom.indexed_scan(sid, index_id, (0, 2**62))
        assert len(records) == len(values)

    def test_aggregate_on_closed_source_data(self, loom, clock):
        """Closing a source keeps its captured data fully queryable."""
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([10.0]))
        for i in range(50):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        t_range = (0, clock.now())
        # Closing the source also closes its indexes, so aggregate first.
        before = loom.indexed_aggregate(1, index_id, t_range, "max").value
        loom.close_source(1)
        assert loom.raw_scan(1, t_range)[0].timestamp > 0
        assert before == 49.0

    def test_empty_payload_records(self, loom, clock):
        loom.define_source(1)
        for _ in range(10):
            loom.push(1, b"")
            clock.advance(10)
        loom.sync()
        records = loom.raw_scan(1, (0, clock.now()))
        assert len(records) == 10
        assert all(r.payload == b"" for r in records)

    def test_identical_timestamps(self, loom):
        """Many records at the same instant (clock does not advance)."""
        loom.define_source(1)
        for i in range(20):
            loom.push(1, value_payload(float(i)))
        loom.sync()
        records = loom.raw_scan(1, (0, 0))
        assert len(records) == 20


class TestHistogramExtremes:
    def test_values_at_exact_edges(self, loom, clock):
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([10.0, 20.0]))
        for v in (10.0, 20.0, 9.999999, 19.999999):
            loom.push(1, value_payload(v))
            clock.advance(10)
        loom.sync()
        t_range = (0, clock.now())
        # Closed range [10, 20] must include both edges.
        records = loom.indexed_scan(1, index_id, t_range, (10.0, 20.0))
        got = sorted(payload_value(r.payload) for r in records)
        assert got == [10.0, 19.999999, 20.0]

    def test_negative_values(self, loom, clock):
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([0.0, 10.0]))
        values = [-5.0, -0.001, 0.0, 5.0, 15.0]
        for v in values:
            loom.push(1, value_payload(v))
            clock.advance(10)
        loom.sync()
        t_range = (0, clock.now())
        below = loom.indexed_scan(1, index_id, t_range, (float("-inf"), -0.001))
        assert sorted(payload_value(r.payload) for r in below) == [-5.0, -0.001]
        result = loom.indexed_aggregate(1, index_id, t_range, "min")
        assert result.value == -5.0
