"""Transport fault-injection matrix: drop, delay, partition, torn frame,
slow consumer — plus the core fault modes the satellite added
(latency and short writes) exercised at the storage layer.

Every scenario asserts two things: the injected fault actually fired
(public counters), and the client's retry machinery converged to an
exactly-once outcome or the documented error."""

from __future__ import annotations

import struct
import time

import pytest

from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    StorageError,
    TransportError,
)
from repro.core.faults import FaultInjectingStorage, LatencyFault
from repro.daemon import LoomClient, LoomServer, ServerConfig
from repro.daemon.transport import (
    FaultInjectingTransport,
    TcpTransport,
    dump_live_traces,
)

ALL_TIME = (0, 2**63 - 1)


def payloads_for(values):
    return [struct.pack("<d", float(v)) for v in values]


@pytest.fixture
def server():
    srv = LoomServer(port=0, config=ServerConfig(shards=1)).start()
    yield srv
    srv.stop()


def faulty_client(server, **kwargs):
    transport = FaultInjectingTransport(
        TcpTransport("127.0.0.1", server.port)
    )
    defaults = dict(deadline_s=8.0, attempt_timeout_s=0.2, circuit_threshold=0)
    defaults.update(kwargs)
    client = LoomClient(transport=transport, **defaults)
    return client, transport


class TestDrop:
    def test_dropped_request_is_retried_not_lost(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.drop_next_sends(1)
        assert client.ingest("cpu", payloads_for([1.0])) == 1
        assert transport.faults_injected == 1
        assert client.retries >= 1
        client.sync("cpu")
        assert client.scan("cpu", ALL_TIME).count == 1
        client.close()

    def test_multiple_drops_still_converge(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.drop_next_sends(3)
        assert client.ingest("cpu", payloads_for([1.0, 2.0])) == 2
        client.sync("cpu")
        assert client.scan("cpu", ALL_TIME).count == 2
        assert transport.faults_injected == 3
        client.close()


class TestDelay:
    def test_delayed_sends_complete_within_budget(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.delay_sends(0.02, first_n=2)
        assert client.ingest("cpu", payloads_for([1.0])) == 1
        assert transport.latency.delays_applied >= 1
        client.close()

    def test_late_success_is_still_success(self, server):
        """The budget bounds retry scheduling, not an arrived response:
        an ACK that lands after the deadline lapsed mid-attempt is kept
        (discarding it would waste a server-applied batch)."""
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.delay_sends(0.2)
        assert client.ingest("cpu", payloads_for([1.0]), deadline_s=0.1) == 1
        transport.make_reliable()
        client.close()

    def test_delay_compounding_with_loss_burns_budget(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.delay_sends(0.05).drop_next_sends(100)
        with pytest.raises(DeadlineExceededError):
            client.ingest("cpu", payloads_for([1.0]), deadline_s=0.3)
        transport.make_reliable()
        client.close()


class TestPartition:
    def test_partition_burns_deadline_then_heals(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.partition()
        with pytest.raises(DeadlineExceededError):
            client.ingest("cpu", payloads_for([1.0]), deadline_s=0.3)
        transport.heal()
        # The un-ACKed batch is simply gone (client gave up); new ingest
        # flows and nothing was half-applied server-side.
        assert client.ingest("cpu", payloads_for([2.0])) == 1
        client.sync("cpu")
        result = client.scan("cpu", ALL_TIME)
        assert result.count == 1
        assert struct.unpack("<d", result.records[0].payload)[0] == 2.0
        client.close()

    def test_partition_mid_stream_no_duplicates(self, server):
        """Partition between ACKed batches; on heal the client's resend
        of an in-flight batch dedups instead of double-ingesting."""
        client, transport = faulty_client(server, deadline_s=15.0)
        client.enable_source("cpu")
        for i in range(5):
            client.ingest("cpu", payloads_for([float(i)]))
        # Lose exactly the response of the next request: the server
        # applies it, the client never learns and resends the same seq.
        transport.drop_next_sends(1)
        client.ingest("cpu", payloads_for([99.0]))
        client.sync("cpu")
        result = client.scan("cpu", ALL_TIME)
        values = sorted(
            struct.unpack("<d", r.payload)[0] for r in result.records
        )
        assert values == [0.0, 1.0, 2.0, 3.0, 4.0, 99.0]  # exactly once
        client.close()


class TestTornFrames:
    def test_torn_request_frame_retried(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.tear_next_frames(1, fraction=0.5)
        assert client.ingest("cpu", payloads_for([1.0])) == 1
        client.sync("cpu")
        assert client.scan("cpu", ALL_TIME).count == 1
        # The server counted a torn-frame connection death.
        deadline = time.monotonic() + 2.0
        while (
            server.metrics.counter(
                "loom.server.torn_frames", "connections dropped mid-frame"
            ).value == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert (
            server.metrics.counter(
                "loom.server.torn_frames", "connections dropped mid-frame"
            ).value
            >= 1
        )
        client.close()

    def test_torn_fraction_validated(self, server):
        client, transport = faulty_client(server)
        with pytest.raises(ValueError):
            transport.tear_next_frames(1, fraction=1.5)
        client.close()


class TestSlowConsumer:
    def test_trickled_frames_still_parse(self, server):
        client, transport = faulty_client(server, attempt_timeout_s=5.0)
        client.enable_source("cpu")
        transport.slow_consumer(chunk_bytes=7)
        assert client.ingest("cpu", payloads_for([1.0, 2.0, 3.0])) == 3
        client.sync("cpu")
        assert client.scan("cpu", ALL_TIME).count == 3
        client.close()

    def test_slow_consumer_with_per_chunk_delay(self, server):
        client, transport = faulty_client(server, attempt_timeout_s=5.0)
        client.enable_source("cpu")
        transport.slow_consumer(chunk_bytes=32).delay_sends(0.001)
        assert client.ingest("cpu", payloads_for([4.0])) == 1
        assert transport.latency.delays_applied > 0
        client.close()


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_and_half_opens(self, server):
        client, transport = faulty_client(
            server,
            circuit_threshold=3,
            circuit_cooldown_s=0.2,
            deadline_s=0.05,
            attempt_timeout_s=0.02,
        )
        transport.partition()
        failures = 0
        with pytest.raises(CircuitOpenError):
            for _ in range(10):
                try:
                    client.health()
                except DeadlineExceededError:
                    failures += 1
        assert failures >= 3
        assert client.circuit_open
        # Cooldown elapses, the wire heals: the half-open trial succeeds
        # and the breaker closes.
        transport.heal()
        time.sleep(0.25)
        client.health(deadline_s=2.0)
        assert not client.circuit_open
        assert client._consecutive_failures == 0
        client.close()

    def test_definitive_server_errors_do_not_trip_breaker(self, server):
        client, transport = faulty_client(server, circuit_threshold=2)
        client.enable_source("cpu")
        for _ in range(5):
            with pytest.raises(Exception):
                client.aggregate("cpu", "missing-index", ALL_TIME, "count")
        assert not client.circuit_open
        client.close()


class TestPacketTraces:
    def test_faults_land_in_trace(self, server):
        client, transport = faulty_client(server)
        client.enable_source("cpu")
        transport.drop_next_sends(1)
        client.ingest("cpu", payloads_for([1.0]))
        events = [e.get("fault") for e in transport.trace if "fault" in e]
        assert "dropped" in events
        assert any(e["event"] == "recv" for e in transport.trace)
        text = transport.dump_trace()
        assert "dropped" in text
        assert dump_live_traces()  # the conftest failure hook's view
        client.close()


class TestStorageFaultModes:
    """The satellite fault modes shared with the transport layer:
    latency (one implementation for both) and short writes."""

    def test_latency_fault_counts_and_disarms(self):
        slept = []
        fault = LatencyFault(sleep=slept.append)
        fault.arm(0.25, first_n=2)
        assert fault.armed
        assert fault.apply() and fault.apply()
        assert not fault.apply()  # burned out
        assert slept == [0.25, 0.25]
        assert fault.delays_applied == 2
        fault.arm(0.1)
        fault.disarm()
        assert not fault.apply()

    def test_storage_delay_appends(self):
        slept = []
        storage = FaultInjectingStorage()
        storage.latency._sleep = slept.append
        storage.delay_appends(0.05, first_n=1)
        storage.append(b"abc")
        storage.append(b"def")
        assert slept == [0.05]
        assert storage.read(0, 6) == b"abcdef"

    def test_short_write_persists_prefix_only(self):
        storage = FaultInjectingStorage()
        storage.append(b"base")
        storage.short_write_next(1, fraction=0.5)
        storage.append(b"12345678")  # lying disk: only 4 bytes land
        assert storage.bytes_short_written == 4
        assert storage.size == 4 + 4
        assert storage.read(4, 4) == b"1234"

    def test_short_write_fraction_validated(self):
        storage = FaultInjectingStorage()
        with pytest.raises(ValueError):
            storage.short_write_next(1, fraction=1.0)
        with pytest.raises(ValueError):
            storage.short_write_next(-1)

    def test_make_reliable_clears_new_modes(self):
        storage = FaultInjectingStorage()
        storage.short_write_next(5).delay_appends(0.5)
        storage.make_reliable()
        storage.append(b"ok")  # neither mode fires
        assert storage.bytes_short_written == 0
        assert storage.latency.delays_applied == 0

    def test_short_write_on_final_flush_detected_by_recovery(self, tmp_path):
        """Arm a short write on the close-time flush: the tail frame is
        a lie, and frame-checksum recovery detects and truncates it."""
        from repro.core import Loom, LoomConfig, VirtualClock
        from repro.core.recovery import check_data_dir

        cfg = LoomConfig(
            data_dir=str(tmp_path), chunk_size=256, record_block_size=100 << 10
        )
        clock = VirtualClock(1)
        loom = Loom(cfg, clock=clock)
        loom.define_source(1)
        for i in range(50):
            clock.advance(10)
            loom.push(1, b"p%04d" % i)
        loom.sync()
        # Wrap the record log storage; the arm applies to the *final*
        # append (the close flush), after which nothing re-reads it.
        log = loom.record_log.log
        storage = FaultInjectingStorage(inner=log._storage)
        log._storage = storage
        for i in range(50):
            clock.advance(10)
            loom.push(1, b"q%04d" % i)
        storage.short_write_next(1, fraction=0.5)
        try:
            loom.close()
        except Exception:
            pass  # a torn close may surface; recovery is the point
        report = check_data_dir(str(tmp_path), repair=True)
        assert report.ok
        state = report.state
        # Every fully-persisted record survives; the torn tail is gone,
        # and recovery never silently returns garbage.
        assert state.total_records >= 50
        assert state.total_records <= 100
        loom2 = Loom.open(cfg, clock=VirtualClock(10**6))
        assert len(loom2.scan(1, (0, 10**9)).records) == state.total_records
        loom2.close()
