"""Tests for the distributed coordinator (paper section 8)."""

import numpy as np
import pytest

from repro.core.errors import LoomError
from repro.daemon import LoomCoordinator, MonitoringDaemon, NodeRef
from repro.workloads import events, latency_stream


def make_node(name: str, seed: int, count_rate: float = 1000):
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.add_index(
        "syscall", "latency", events.latency_value, [5.0, 20.0, 80.0, 320.0]
    )
    stream = latency_stream(count_rate, 2.0, seed=seed)
    daemon.replay(stream)
    values = [events.latency_value(p) for _, _, p in stream]
    return NodeRef(name, daemon), values


@pytest.fixture(scope="module")
def cluster():
    nodes, all_values = [], []
    for i, name in enumerate(("host-a", "host-b", "host-c")):
        node, values = make_node(name, seed=100 + i, count_rate=700 + 300 * i)
        nodes.append(node)
        all_values.extend(values)
    coordinator = LoomCoordinator(nodes)
    t_range = (0, max(n.daemon.clock.now() for n in nodes))
    return coordinator, all_values, t_range


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(LoomError):
            LoomCoordinator([])

    def test_unique_names(self):
        daemon = MonitoringDaemon()
        with pytest.raises(LoomError):
            LoomCoordinator([NodeRef("x", daemon), NodeRef("x", daemon)])


class TestGlobalAggregates:
    @pytest.mark.parametrize("method", ["count", "sum", "min", "max", "mean"])
    def test_distributive_matches_reference(self, cluster, method):
        coordinator, values, t_range = cluster
        result = coordinator.global_aggregate("syscall", "latency", t_range, method)
        got = result.value
        reference = {
            "count": float(len(values)),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }[method]
        assert got == pytest.approx(reference)

    def test_unsupported_method(self, cluster):
        coordinator, _, t_range = cluster
        with pytest.raises(LoomError):
            coordinator.global_aggregate("syscall", "latency", t_range, "median")


class TestGlobalPercentile:
    @pytest.mark.parametrize("percentile", [10.0, 50.0, 95.0, 99.9])
    def test_matches_numpy_over_union(self, cluster, percentile):
        coordinator, values, t_range = cluster
        result = coordinator.global_percentile(
            "syscall", "latency", t_range, percentile
        )
        got = result.value
        expected = float(np.percentile(values, percentile, method="inverted_cdf"))
        assert got == expected

    def test_empty_window_returns_none(self, cluster):
        coordinator, _, t_range = cluster
        future = t_range[1] + 10**12
        result = coordinator.global_percentile(
            "syscall", "latency", (future, future + 1), 50.0
        )
        assert result.value is None
        assert result.count == 0
        assert not result.stats.degraded

    def test_invalid_percentile(self, cluster):
        coordinator, _, t_range = cluster
        with pytest.raises(LoomError):
            coordinator.global_percentile("syscall", "latency", t_range, 101.0)

    def test_mismatched_histograms_rejected(self):
        a = MonitoringDaemon()
        a.enable_source("s", 1)
        a.add_index("s", "v", events.latency_value, [1.0, 2.0])
        a.receive("s", events.pack_latency(0, 1.0, 0))
        a.sync()
        b = MonitoringDaemon()
        b.enable_source("s", 1)
        b.add_index("s", "v", events.latency_value, [9.0])
        b.receive("s", events.pack_latency(0, 1.0, 0))
        b.sync()
        coordinator = LoomCoordinator([NodeRef("a", a), NodeRef("b", b)])
        with pytest.raises(LoomError):
            coordinator.global_percentile("s", "v", (0, 10**12), 50.0)


class TestFanOutScan:
    def test_returns_per_node_records(self, cluster):
        coordinator, values, t_range = cluster
        result = coordinator.fan_out_scan("syscall", t_range)
        assert set(result) == {"host-a", "host-b", "host-c"}
        assert sum(len(r.records) for r in result.values()) == len(values)
        assert not any(r.stats.degraded for r in result.values())
