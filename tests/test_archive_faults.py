"""Cold-tier fault injection: torn archive tails and aborted migrations.

Exercises the crash-safety claims of the migration commit protocol
(DESIGN.md §15):

* a torn, unratified suffix on the archive log is truncated on reopen
  without touching ratified frames;
* a crash between the ``DATA`` frames and the ``RECYCLE`` frame leaves
  the hot chunks authoritative — no loss, no duplication — and recovery
  drops the unratified frames;
* a storage failure mid-pass aborts the whole pass cleanly and a retry
  succeeds with byte-identical answers.
"""

import struct

import pytest

from repro.core import Health, StorageError
from repro.core.archive import ArchiveLog
from repro.core.clock import VirtualClock
from repro.core.config import LoomConfig, TierConfig
from repro.core.faults import FaultInjectingStorage
from repro.core.loom import Loom
from repro.core.recovery import check_data_dir

pytestmark = pytest.mark.faults

_VALUE = struct.Struct("<d")
ALL_TIME = (0, 2**62)


def _payload(value, pad=40):
    return _VALUE.pack(float(value)) + b"\x00" * pad


def _tiered_config(tmp_path=None, **overrides):
    kwargs = dict(
        chunk_size=2048,
        record_block_size=4096,
        timestamp_interval=4,
        tier=TierConfig(auto_migrate=False),
    )
    if tmp_path is not None:
        kwargs["data_dir"] = str(tmp_path)
    kwargs.update(overrides)
    return LoomConfig(**kwargs)


def _fill(loom, clock, count=400):
    loom.define_source(1)
    for i in range(count):
        loom.push(1, _payload(i % 100))
        clock.advance(1)


def _scan_bytes(loom):
    return [
        (r.address, r.timestamp, bytes(r.payload))
        for r in loom.scan(1, ALL_TIME).records
    ]


class TestTornArchiveTail:
    def test_torn_unratified_suffix_truncated_on_reopen(self, tmp_path):
        cfg = _tiered_config(tmp_path)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock)
        report = loom.migrate(force=True)
        assert report.chunks_migrated > 0
        boundary = loom.record_log.cold_boundary
        before = _scan_bytes(loom)
        loom.close()

        # A crash mid-append leaves a partial, unratified frame at the
        # tail of the archive log.
        archive_path = cfg.archive_log_path()
        with open(archive_path, "ab") as f:
            f.write(b"\x7f" * 37)

        checked = check_data_dir(str(tmp_path), repair=True)
        assert checked.ok
        assert any("archive" in r for r in checked.repairs)

        reopened = Loom.open(cfg, clock=VirtualClock(10**7))
        assert reopened.record_log.cold_boundary == boundary
        assert _scan_bytes(reopened) == before
        reopened.close()


class TestCrashBeforeRecycle:
    def test_failed_recycle_keeps_hot_authoritative(self, monkeypatch):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock)
        before = _scan_bytes(loom)

        def boom(self, boundary):
            raise StorageError("injected: crash before RECYCLE")

        monkeypatch.setattr(ArchiveLog, "append_recycle", boom)
        with pytest.raises(StorageError, match="injected"):
            loom.migrate(force=True)
        monkeypatch.undo()

        # The pass never ratified: the boundary did not move, the hot
        # chunks answer, and the writer stays healthy.
        log = loom.record_log
        assert log.cold_boundary == 0
        assert log.health() == Health.HEALTHY
        assert _scan_bytes(loom) == before

        # A retry ratifies and the answers do not change.
        report = loom.migrate(force=True)
        assert report.chunks_migrated > 0
        assert log.cold_boundary == report.cold_boundary > 0
        assert _scan_bytes(loom) == before
        loom.close()

    def test_unratified_frames_dropped_on_reopen(self, tmp_path, monkeypatch):
        cfg = _tiered_config(tmp_path)
        clock = VirtualClock(1_000)
        loom = Loom(cfg, clock=clock)
        _fill(loom, clock)
        before = _scan_bytes(loom)
        total = loom.record_log.total_records

        def boom(self, boundary):
            raise StorageError("injected: crash before RECYCLE")

        monkeypatch.setattr(ArchiveLog, "append_recycle", boom)
        with pytest.raises(StorageError, match="injected"):
            loom.migrate(force=True)
        monkeypatch.undo()
        loom.close()

        # Recovery truncates the unratified DATA frames; the hot log is
        # the sole authority again — no loss, no duplication.
        checked = check_data_dir(str(tmp_path), repair=True)
        assert checked.ok
        reopened = Loom.open(cfg, clock=VirtualClock(10**7))
        assert reopened.record_log.cold_boundary == 0
        assert reopened.record_log.total_records == total
        assert _scan_bytes(reopened) == before
        reopened.close()


class TestMidPassFailure:
    def test_data_frame_failure_aborts_pass_and_retry_succeeds(self):
        clock = VirtualClock(1_000)
        loom = Loom(_tiered_config(), clock=clock)
        _fill(loom, clock)
        before = _scan_bytes(loom)
        archive = loom.record_log.archive
        faulty = FaultInjectingStorage(archive._storage).fail_once()
        archive._storage = faulty

        with pytest.raises(StorageError):
            loom.migrate(force=True)
        assert faulty.faults_injected == 1
        assert loom.record_log.cold_boundary == 0
        assert _scan_bytes(loom) == before

        # The fault is one-shot: the retried pass commits.
        report = loom.migrate(force=True)
        assert report.chunks_migrated > 0
        assert loom.record_log.cold_boundary > 0
        assert _scan_bytes(loom) == before
        loom.close()
