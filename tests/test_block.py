"""Tests for staging blocks and their seqlock versioning (paper §5.5)."""

import pytest

from repro.core.block import Block


class TestBlockWrites:
    def test_map_and_write(self):
        block = Block(16)
        block.map(100)
        assert block.write(b"abcd") == 4
        assert block.filled == 4
        assert block.remaining == 12

    def test_write_clips_to_capacity(self):
        block = Block(4)
        block.map(0)
        written = block.write(b"abcdef")
        assert written == 4
        assert block.is_full

    def test_write_unmapped_raises(self):
        with pytest.raises(RuntimeError):
            Block(4).write(b"a")

    def test_double_map_raises(self):
        block = Block(4)
        block.map(0)
        with pytest.raises(RuntimeError):
            block.map(4)

    def test_remap_after_recycle(self):
        block = Block(4)
        block.map(0)
        block.write(b"abcd")
        block.recycle()
        block.map(4)
        assert block.filled == 0
        assert block.base_address == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Block(0)

    def test_snapshot_bytes(self):
        block = Block(8)
        block.map(0)
        block.write(b"abc")
        assert block.snapshot_bytes() == b"abc"


class TestSeqlockReads:
    def test_try_copy_within_filled(self):
        block = Block(16)
        block.map(100)
        block.write(b"hello-world")
        assert block.try_copy(100, 5) == b"hello"
        assert block.try_copy(106, 5) == b"world"

    def test_try_copy_outside_range_returns_none(self):
        block = Block(16)
        block.map(100)
        block.write(b"abcd")
        assert block.try_copy(99, 2) is None  # before base
        assert block.try_copy(103, 2) is None  # past filled
        assert block.try_copy(200, 1) is None  # other block's range

    def test_try_copy_unmapped_returns_none(self):
        block = Block(16)
        assert block.try_copy(0, 1) is None

    def test_version_bumps_by_two_per_recycle(self):
        block = Block(8)
        block.map(0)
        v0 = block.version
        block.recycle()
        assert block.version == v0 + 2
        assert block.version % 2 == 0

    def test_copy_after_recycle_returns_none(self):
        block = Block(8)
        block.map(0)
        block.write(b"abcd")
        block.recycle()
        assert block.try_copy(0, 4) is None

    def test_copy_from_remapped_block_sees_new_data(self):
        block = Block(8)
        block.map(0)
        block.write(b"oldd")
        block.recycle()
        block.map(8)
        block.write(b"neww")
        assert block.try_copy(0, 4) is None  # old address range gone
        assert block.try_copy(8, 4) == b"neww"


class TestReadRange:
    """Block.read_range: the explicit bounded-retry seqlock contract."""

    def test_read_range_returns_covered_bytes(self):
        block = Block(16)
        block.map(0)
        block.write(b"abcdefgh")
        assert block.read_range(2, 4) == b"cdef"

    def test_read_range_unmapped_raises_snapshot_retry(self):
        from repro.core.errors import SnapshotRetry

        block = Block(16)
        with pytest.raises(SnapshotRetry) as excinfo:
            block.read_range(0, 4)
        assert excinfo.value.address == 0
        assert excinfo.value.attempts >= 1

    def test_read_range_after_recycle_raises_immediately(self):
        """A range recycled away cannot come back: one attempt, no spin."""
        from repro.core.errors import SnapshotRetry

        block = Block(16)
        block.map(0)
        block.write(b"abcdefgh")
        block.recycle()
        with pytest.raises(SnapshotRetry) as excinfo:
            block.read_range(0, 4, retries=64)
        assert excinfo.value.attempts == 1

    def test_read_range_out_of_bounds_raises(self):
        from repro.core.errors import SnapshotRetry

        block = Block(16)
        block.map(0)
        block.write(b"abcd")
        with pytest.raises(SnapshotRetry):
            block.read_range(0, 8)  # beyond filled

    def test_read_range_retries_through_torn_copy(self):
        """A copy torn by a racing recycle retries and then succeeds."""

        class FlakyBlock(Block):
            """First try_copy tears (as if a recycle raced it), later
            attempts succeed while the block still covers the range."""

            __slots__ = ("calls",)

            def __init__(self, capacity):
                super().__init__(capacity)
                self.calls = 0

            def try_copy(self, address, length):
                self.calls += 1
                if self.calls == 1:
                    return None
                return super().try_copy(address, length)

        block = FlakyBlock(16)
        block.map(0)
        block.write(b"abcdefgh")
        assert block.read_range(0, 4) == b"abcd"
        assert block.calls == 2

    def test_snapshot_retry_is_a_snapshot_conflict(self):
        """Catching the old SnapshotConflictError still catches the new
        explicit signal (hierarchy compatibility)."""
        from repro.core.errors import SnapshotConflictError, SnapshotRetry

        assert issubclass(SnapshotRetry, SnapshotConflictError)
