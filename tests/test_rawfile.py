"""Tests for the raw-file capture baseline and its script-style scans."""

import pytest

from repro.baselines.rawfile import RawFileCapture, scan_file


class TestRawFileCapture:
    def test_write_and_scan_memory(self):
        capture = RawFileCapture()
        for i in range(100):
            capture.write(1, i * 10, bytes([i]))
        records = list(capture.scan())
        assert len(records) == 100
        assert records[0].payload == bytes([0])
        assert records[99].timestamp == 990

    def test_write_and_scan_file(self, tmp_path):
        capture = RawFileCapture(path=str(tmp_path / "capture.bin"))
        for i in range(50):
            capture.write(2, i, b"x" * 24)
        records = list(capture.scan())
        assert len(records) == 50
        capture.close()

    def test_buffering_flushes_at_threshold(self):
        capture = RawFileCapture(buffer_bytes=128)
        for i in range(10):
            capture.write(1, i, b"y" * 24)
        # Several buffer flushes must have happened before scan().
        assert capture.size_bytes == 10 * (16 + 24)

    def test_record_count(self):
        capture = RawFileCapture()
        for i in range(7):
            capture.write(1, i, b"")
        assert capture.record_count == 7


class TestScriptScan:
    @pytest.fixture
    def capture(self):
        capture = RawFileCapture()
        for i in range(200):
            capture.write(1 + i % 2, i * 100, bytes([i % 256]))
        return capture

    def test_filter_by_source(self, capture):
        got = scan_file(capture, source_id=1)
        assert len(got) == 100
        assert all(r.source_id == 1 for r in got)

    def test_filter_by_time(self, capture):
        got = scan_file(capture, t_start=5000, t_end=9900)
        assert len(got) == 50

    def test_filter_by_predicate(self, capture):
        got = scan_file(capture, predicate=lambda r: r.payload[0] < 10)
        assert all(r.payload[0] < 10 for r in got)

    def test_combined_filters(self, capture):
        got = scan_file(
            capture,
            source_id=2,
            t_start=0,
            t_end=10_000,
            predicate=lambda r: r.payload[0] % 2 == 1,
        )
        assert all(
            r.source_id == 2 and r.timestamp <= 10_000 and r.payload[0] % 2 == 1
            for r in got
        )
