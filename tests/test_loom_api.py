"""Tests for the Loom facade: the Figure 9 API surface and lifecycle."""


import pytest

from repro.core import (
    HistogramSpec,
    Loom,
    LoomConfig,
)

from conftest import payload_value, value_payload


class TestApiSurface:
    def test_figure9_operator_names_exist(self):
        """The public API mirrors Figure 9's operator table."""
        for name in (
            "define_source",
            "close_source",
            "define_index",
            "close_index",
            "push",
            "sync",
            "raw_scan",
            "indexed_scan",
            "indexed_aggregate",
        ):
            assert callable(getattr(Loom, name))

    def test_define_index_accepts_edge_sequence(self, loom):
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, [1.0, 2.0, 3.0])
        assert isinstance(index_id, int)

    def test_define_index_accepts_spec(self, loom):
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, HistogramSpec([1.0]))
        assert isinstance(index_id, int)

    def test_push_returns_address(self, loom):
        loom.define_source(1)
        assert loom.push(1, b"abc") == 0
        assert loom.push(1, b"defg") > 0

    def test_total_records_never_drops(self, loom, clock):
        """Loom captures complete data: every push is counted, none lost
        (Figure 11's Loom column)."""
        loom.define_source(1)
        for i in range(500):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        assert loom.total_records == 500
        assert loom.source_record_count(1) == 500
        records = loom.raw_scan(1, (0, clock.now()))
        assert len(records) == 500

    def test_context_manager_closes(self, small_config, clock):
        with Loom(small_config, clock=clock) as loom:
            loom.define_source(1)
            loom.push(1, b"x")
        with pytest.raises(Exception):
            loom.push(1, b"y")

    def test_footprint_reports_log_sizes(self, indexed_loom):
        loom, *_ = indexed_loom
        fp = loom.footprint()
        assert fp["record_log_bytes"] > 0
        assert fp["chunk_index_bytes"] > 0
        assert fp["timestamp_index_bytes"] > 0
        assert fp["finalized_chunks"] > 0

    def test_layered_index_sizes(self, indexed_loom):
        """Paper §4.2: each index layer is far smaller than the one below."""
        loom, *_ = indexed_loom
        fp = loom.footprint()
        assert fp["chunk_index_bytes"] < fp["record_log_bytes"]
        assert fp["timestamp_index_bytes"] < fp["chunk_index_bytes"]


class TestIndexLifecycle:
    def test_index_redefinition_covers_only_new_data(self, loom, clock):
        """Section 5.3: a new index accelerates only data arriving after
        its definition; old data stays queryable via raw scans."""
        loom.define_source(1)
        for i in range(100):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        split_time = clock.now()
        index_id = loom.define_index(1, payload_value, [10.0, 50.0])
        for i in range(100, 200):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        # Indexed aggregate over the new-data window is exact.
        result = loom.indexed_aggregate(
            1, index_id, (split_time, clock.now()), "count"
        )
        assert result.value == 100.0
        # Raw scan still sees all 200 records.
        assert len(loom.raw_scan(1, (0, clock.now()))) == 200

    def test_closing_index_does_not_disturb_ingest(self, loom, clock):
        loom.define_source(1)
        index_id = loom.define_index(1, payload_value, [10.0])
        loom.push(1, value_payload(1.0))
        loom.close_index(index_id)
        loom.push(1, value_payload(2.0))
        loom.sync()
        assert loom.total_records == 2

    def test_multiple_indexes_per_source(self, loom, clock):
        loom.define_source(1)
        by_value = loom.define_index(1, payload_value, [10.0, 100.0])
        by_half = loom.define_index(
            1, lambda p: payload_value(p) / 2.0, [10.0, 100.0]
        )
        for i in range(100):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        t = (0, clock.now())
        assert loom.indexed_aggregate(1, by_value, t, "max").value == 99.0
        assert loom.indexed_aggregate(1, by_half, t, "max").value == 49.5


class TestMultipleSources:
    def test_interleaved_sources_query_independently(self, loom, clock):
        loom.define_source(1)
        loom.define_source(2)
        i1 = loom.define_index(1, payload_value, [10.0])
        i2 = loom.define_index(2, payload_value, [10.0])
        for i in range(100):
            loom.push(1, value_payload(1.0))
            loom.push(2, value_payload(100.0))
            clock.advance(10)
        loom.sync()
        t = (0, clock.now())
        assert loom.indexed_aggregate(1, i1, t, "max").value == 1.0
        assert loom.indexed_aggregate(2, i2, t, "max").value == 100.0
        assert loom.indexed_aggregate(1, i1, t, "count").value == 100.0

    def test_many_sources(self, loom, clock):
        n_sources = 20
        for sid in range(1, n_sources + 1):
            loom.define_source(sid)
        for round_ in range(30):
            for sid in range(1, n_sources + 1):
                loom.push(sid, value_payload(float(sid)))
            clock.advance(100)
        loom.sync()
        for sid in range(1, n_sources + 1):
            records = loom.raw_scan(sid, (0, clock.now()))
            assert len(records) == 30
            assert all(payload_value(r.payload) == float(sid) for r in records)


class TestClocks:
    def test_monotonic_clock_default(self):
        loom = Loom(LoomConfig(chunk_size=1024))
        loom.define_source(1)
        loom.push(1, b"a")
        loom.push(1, b"b")
        loom.sync()
        records = loom.raw_scan(1, (0, 2**63 - 1))
        assert len(records) == 2
        assert records[0].timestamp >= records[1].timestamp
        loom.close()

    def test_virtual_clock_timestamps(self, loom, clock):
        loom.define_source(1)
        clock.set(1000)
        loom.push(1, b"a")
        clock.set(2000)
        loom.push(1, b"b")
        loom.sync()
        records = loom.raw_scan(1, (1500, 2500))
        assert len(records) == 1
        assert records[0].timestamp == 2000


class TestFileBackedLoom:
    def test_logs_written_to_data_dir(self, tmp_path, clock):
        config = LoomConfig(
            chunk_size=512,
            record_block_size=2048,
            data_dir=str(tmp_path),
        )
        loom = Loom(config, clock=clock)
        loom.define_source(1)
        for i in range(200):
            loom.push(1, value_payload(float(i)))
            clock.advance(10)
        loom.sync()
        records = loom.raw_scan(1, (0, clock.now()))
        assert len(records) == 200
        loom.close()
        assert (tmp_path / "records.log").stat().st_size > 0
        assert (tmp_path / "chunks.idx").stat().st_size > 0
        assert (tmp_path / "timestamps.idx").stat().st_size > 0
