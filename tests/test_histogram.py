"""Tests for histogram index specifications (paper §4.2, Figure 8)."""

import pytest

from repro.core.errors import HistogramSpecError
from repro.core.histogram import (
    HistogramSpec,
    IndexDefinition,
    exponential_edges,
    uniform_edges,
)


class TestSpecValidation:
    def test_needs_at_least_one_edge(self):
        with pytest.raises(HistogramSpecError):
            HistogramSpec([])

    def test_edges_must_increase(self):
        with pytest.raises(HistogramSpecError):
            HistogramSpec([1.0, 1.0])
        with pytest.raises(HistogramSpecError):
            HistogramSpec([2.0, 1.0])

    def test_edges_must_be_finite(self):
        with pytest.raises(HistogramSpecError):
            HistogramSpec([float("nan")])
        with pytest.raises(HistogramSpecError):
            HistogramSpec([0.0, float("inf")])

    def test_single_edge_allowed(self):
        """One edge = the exact-match emulation mode of §6.4."""
        spec = HistogramSpec([50.0])
        assert spec.num_bins == 2


class TestBinning:
    def test_loom_adds_outlier_bins(self):
        """Figure 8: the daemon defines interior bins; Loom adds bins
        below and above."""
        spec = HistogramSpec([10.0, 20.0, 30.0])
        assert spec.num_bins == 4
        assert spec.low_outlier_bin == 0
        assert spec.high_outlier_bin == 3

    def test_bin_of(self):
        spec = HistogramSpec([10.0, 20.0])
        assert spec.bin_of(5.0) == 0  # low outlier
        assert spec.bin_of(10.0) == 1  # inclusive lower edge
        assert spec.bin_of(19.999) == 1
        assert spec.bin_of(20.0) == 2  # exclusive upper edge
        assert spec.bin_of(1e9) == 2  # high outlier

    def test_bin_range_roundtrip(self):
        spec = HistogramSpec([10.0, 20.0, 40.0])
        for bin_idx in range(spec.num_bins):
            lo, hi = spec.bin_range(bin_idx)
            if lo != float("-inf"):
                assert spec.bin_of(lo) == bin_idx
            if hi != float("inf"):
                # hi is exclusive: a value just below belongs to this bin.
                assert spec.bin_of(hi - 1e-9) == bin_idx
                assert spec.bin_of(hi) == bin_idx + 1

    def test_bin_range_bounds(self):
        spec = HistogramSpec([1.0])
        assert spec.bin_range(0) == (float("-inf"), 1.0)
        assert spec.bin_range(1) == (1.0, float("inf"))
        with pytest.raises(HistogramSpecError):
            spec.bin_range(2)
        with pytest.raises(HistogramSpecError):
            spec.bin_range(-1)


class TestRangeQueries:
    def test_bins_overlapping(self):
        spec = HistogramSpec([10.0, 20.0, 30.0])
        assert spec.bins_overlapping(12.0, 18.0) == [1]
        assert spec.bins_overlapping(12.0, 25.0) == [1, 2]
        assert spec.bins_overlapping(0.0, 100.0) == [0, 1, 2, 3]
        assert spec.bins_overlapping(50.0, 40.0) == []  # inverted range

    def test_bins_overlapping_open_ended(self):
        spec = HistogramSpec([10.0, 20.0])
        assert spec.bins_overlapping(15.0, float("inf")) == [1, 2]
        assert spec.bins_overlapping(float("-inf"), 15.0) == [0, 1]

    def test_bins_fully_inside(self):
        spec = HistogramSpec([10.0, 20.0, 30.0])
        assert spec.bins_fully_inside(10.0, 30.0) == [1, 2]
        assert spec.bins_fully_inside(10.0, 29.0) == [1]
        assert spec.bins_fully_inside(11.0, 30.0) == [2]
        assert spec.bins_fully_inside(12.0, 18.0) == []

    def test_outlier_bins_fully_inside_open_query(self):
        spec = HistogramSpec([10.0, 20.0])
        assert spec.bins_fully_inside(10.0, float("inf")) == [1, 2]
        assert spec.bins_fully_inside(float("-inf"), 10.0) == [0]


class TestEdgeBuilders:
    def test_uniform(self):
        edges = uniform_edges(0.0, 100.0, 4)
        assert edges == [0.0, 25.0, 50.0, 75.0, 100.0]

    def test_uniform_validation(self):
        with pytest.raises(HistogramSpecError):
            uniform_edges(0.0, 100.0, 0)
        with pytest.raises(HistogramSpecError):
            uniform_edges(5.0, 5.0, 2)

    def test_exponential(self):
        edges = exponential_edges(1.0, 16.0, 4)
        assert edges == pytest.approx([1.0, 2.0, 4.0, 8.0, 16.0])

    def test_exponential_validation(self):
        with pytest.raises(HistogramSpecError):
            exponential_edges(0.0, 10.0, 4)
        with pytest.raises(HistogramSpecError):
            exponential_edges(10.0, 1.0, 4)


class TestIndexDefinition:
    def test_value_and_bin(self):
        spec = HistogramSpec([10.0])
        definition = IndexDefinition(
            index_id=1,
            source_id=2,
            index_func=lambda payload: float(len(payload)),
            spec=spec,
        )
        assert definition.value_of(b"abc") == 3.0
        assert definition.bin_of(b"abc") == 0
        assert definition.bin_of(b"x" * 12) == 1
