"""Batched ingest (``push_many``) equivalence and zero-copy scan tests.

The batch fast path must be *observationally identical* to a loop of
``push`` calls under a frozen clock: byte-identical record-log contents
(headers, back-pointer chains, payloads), byte-identical chunk-index and
timestamp-index logs (including CHUNK/RECORD entry ordering when a batch
spans chunk boundaries), and identical writer-side source state.  The
property tests here pin that equivalence over randomized batch shapes;
values are integer-valued floats so per-bin sums are exactly representable
and the comparison is bit-exact (see ChunkSummary.add_indexed_values for
the float-associativity caveat).
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistogramSpec, Loom, LoomConfig, VirtualClock
from repro.core.errors import ClosedError, UnknownSourceError
from repro.core.operators import QueryStats, raw_scan
from repro.core.record_log import RecordLog
from repro.core.snapshot import Snapshot

from conftest import payload_value, value_payload


def _payload(value: int, pad: int) -> bytes:
    """An indexable payload: a float value followed by ``pad`` filler bytes."""
    return struct.pack("<d", float(value)) + bytes(pad)


def _build(batches, batched: bool, n_sources: int = 1) -> RecordLog:
    """Ingest ``batches`` via push_many (batched) or a push loop."""
    config = LoomConfig(
        chunk_size=512,
        record_block_size=1024,  # small blocks: batches regularly spill
        index_block_size=2048,
        timestamp_block_size=1024,
        timestamp_interval=8,
    )
    clock = VirtualClock()
    log = RecordLog(config=config, clock=clock)
    for sid in range(1, n_sources + 1):
        log.define_source(sid)
        log.define_index(sid, payload_value, HistogramSpec([2.0, 5.0, 9.0]))
    t = 100
    addresses = []
    for i, batch in enumerate(batches):
        sid = 1 + i % n_sources
        clock.set(t)
        if batched:
            addresses.extend(log.push_many(sid, batch))
        else:
            addresses.extend(log.push(sid, p) for p in batch)
        t += 7
    log.sync()
    return log, addresses


def _assert_equivalent(a: RecordLog, b: RecordLog, n_sources: int = 1) -> None:
    assert a.log.tail_address == b.log.tail_address
    assert a.log.read(0, a.log.tail_address) == b.log.read(0, b.log.tail_address)
    ta, tb = a.timestamp_index.log, b.timestamp_index.log
    assert ta.read(0, ta.tail_address) == tb.read(0, tb.tail_address)
    ca, cb = a.chunk_index.log, b.chunk_index.log
    assert ca.read(0, ca.tail_address) == cb.read(0, cb.tail_address)
    assert a._active_summary.encode() == b._active_summary.encode()
    assert a.total_records == b.total_records
    assert a.timestamp_index.entry_count == b.timestamp_index.entry_count
    for sid in range(1, n_sources + 1):
        sa, sb = a.get_source(sid), b.get_source(sid)
        assert (sa.last_addr, sa.published_head, sa.record_count) == (
            sb.last_addr,
            sb.published_head,
            sb.record_count,
        )
        assert (sa.bytes_ingested, sa.first_timestamp, sa.last_timestamp) == (
            sb.bytes_ingested,
            sb.first_timestamp,
            sb.last_timestamp,
        )


payload_st = st.tuples(st.integers(0, 15), st.integers(0, 40)).map(
    lambda t: _payload(*t)
)
batch_st = st.lists(payload_st, min_size=0, max_size=40)
batches_st = st.lists(batch_st, min_size=1, max_size=10)


class TestEquivalenceProperties:
    @settings(max_examples=40, deadline=None)
    @given(batches=batches_st)
    def test_push_many_equals_push_loop(self, batches):
        """Same log bytes, index logs, summaries, state, and addresses."""
        loop, loop_addrs = _build(batches, batched=False)
        batched, batch_addrs = _build(batches, batched=True)
        try:
            assert batch_addrs == loop_addrs
            _assert_equivalent(loop, batched)
        finally:
            loop.close()
            batched.close()

    @settings(max_examples=20, deadline=None)
    @given(batches=batches_st)
    def test_equivalence_with_interleaved_sources(self, batches):
        """Batches alternate between two sources; chains stay per-source."""
        loop, _ = _build(batches, batched=False, n_sources=2)
        batched, _ = _build(batches, batched=True, n_sources=2)
        try:
            _assert_equivalent(loop, batched, n_sources=2)
        finally:
            loop.close()
            batched.close()

    def test_batch_spanning_many_chunks_and_blocks(self):
        """One batch much larger than a chunk and a staging block."""
        # 200 records x ~56 B ≈ 11 KiB: ~22 chunks, ~11 block rotations.
        batch = [_payload(i % 12, 24) for i in range(200)]
        loop, _ = _build([batch], batched=False)
        batched, _ = _build([batch], batched=True)
        try:
            assert len(loop.chunk_index) > 5
            _assert_equivalent(loop, batched)
        finally:
            loop.close()
            batched.close()


class TestPushManyAPI:
    @pytest.fixture
    def record_log(self, small_config, clock):
        log = RecordLog(config=small_config, clock=clock)
        yield log
        log.close()

    def test_empty_batch_is_a_noop(self, record_log):
        record_log.define_source(1)
        assert record_log.push_many(1, []) == []
        assert record_log.total_records == 0
        assert record_log.log.tail_address == 0

    def test_unknown_source_rejected(self, record_log):
        with pytest.raises(UnknownSourceError):
            record_log.push_many(99, [b"x"])

    def test_closed_source_rejected(self, record_log):
        record_log.define_source(1)
        record_log.close_source(1)
        with pytest.raises(UnknownSourceError):
            record_log.push_many(1, [b"x"])

    def test_closed_log_rejected(self, small_config, clock):
        log = RecordLog(config=small_config, clock=clock)
        log.define_source(1)
        log.close()
        with pytest.raises(ClosedError):
            log.push_many(1, [b"x"])

    def test_batch_shares_one_timestamp_and_chains(self, record_log, clock):
        record_log.define_source(1)
        clock.set(500)
        addresses = record_log.push_many(1, [b"a", b"bb", b"ccc"])
        records = [record_log.read_record(a) for a in addresses]
        assert [r.payload for r in records] == [b"a", b"bb", b"ccc"]
        assert {r.timestamp for r in records} == {500}
        assert records[1].prev_addr == addresses[0]
        assert records[2].prev_addr == addresses[1]

    def test_publish_interval_counts_batch_records(self, clock):
        config = LoomConfig(
            chunk_size=512, record_block_size=4096, publish_interval=10
        )
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        log.push_many(1, [b"12345678"] * 9)
        assert log.log.watermark == 0  # batch below the interval
        log.push_many(1, [b"12345678"])
        assert log.log.watermark == log.log.tail_address
        log.close()

    def test_loom_facade_push_many(self, small_config):
        with Loom(small_config, clock=VirtualClock()) as loom:
            loom.define_source(1)
            addresses = loom.push_many(1, [b"x", b"y"])
            loom.sync()
            assert loom.total_records == 2
            assert [r.payload for r in loom.raw_scan(1, (0, 10**18))] == [b"y", b"x"]
            assert len(addresses) == 2


class TestZeroCopyScans:
    @pytest.fixture
    def loaded(self, small_config, clock):
        log = RecordLog(config=small_config, clock=clock)
        log.define_source(1)
        for i in range(30):
            clock.advance(5)
            log.push(1, value_payload(float(i)))
        log.sync()
        yield log
        log.close()

    def test_copy_false_yields_memoryviews(self, loaded):
        end = loaded.log.tail_address
        copied = list(loaded.iter_records_between(0, end, copy=True))
        views = list(loaded.iter_records_between(0, end, copy=False))
        assert all(isinstance(r.payload, bytes) for r in copied)
        assert all(isinstance(r.payload, memoryview) for r in views)
        assert [bytes(r.payload) for r in views] == [r.payload for r in copied]
        assert [r.address for r in views] == [r.address for r in copied]

    def test_zero_copy_payloads_decode(self, loaded):
        end = loaded.log.tail_address
        values = [
            payload_value(r.payload)
            for r in loaded.iter_records_between(0, end, copy=False)
        ]
        assert values == [float(i) for i in range(30)]

    def test_query_stats_count_decodes(self, loaded):
        snapshot = Snapshot.capture(loaded)
        stats = QueryStats()
        results = list(raw_scan(snapshot, 1, 0, 10**18, stats=stats))
        assert len(results) == 30
        # Every yielded record was decoded (the chain walk may decode a
        # few extra records while skipping above-watermark hints).
        assert stats.records_decoded >= 30
        # A fresh stats object starts from zero: counting is per-query.
        stats2 = QueryStats()
        list(raw_scan(snapshot, 1, 0, 10**18, stats=stats2))
        assert stats2.records_decoded == stats.records_decoded

    def test_record_log_has_no_shared_decode_counter(self, loaded):
        assert not hasattr(loaded, "records_decoded")

    def test_inline_read_size_is_configurable(self, clock):
        config = LoomConfig(chunk_size=512, inline_read_size=28)
        log = RecordLog(config=config, clock=clock)
        log.define_source(1)
        address = log.push(1, bytes(range(200)))  # payload exceeds inline read
        assert log.read_record(address).payload == bytes(range(200))
        log.close()

    def test_inline_read_size_must_cover_header(self):
        with pytest.raises(ValueError):
            LoomConfig(inline_read_size=23)
