"""End-to-end tests of the networked Loom service (server + client).

Covers the tentpole's robustness contract: sharded ingest with
enqueue-ACK, watermark backpressure (the ACCEPTANCE overload test),
idempotent resend/dedup, deadline propagation, and the server-side
health machine (DEGRADED shards shed ingest and recover; FAILED shards
refuse ingest but keep serving reads).
"""

from __future__ import annotations

import struct
import threading
import time

import pytest

from repro.core.config import LoomConfig
from repro.core.errors import (
    DeadlineExceededError,
    LoomError,
    StorageError,
)
from repro.core.faults import FaultInjectingStorage
from repro.core.hybridlog import Health
from repro.daemon import LoomClient, LoomServer, ServerConfig, shard_of
from repro.daemon.server import WIRE_INDEX_FUNCS

EDGES = [0.0, 10.0, 100.0, 1000.0]
ALL_TIME = (0, 2**63 - 1)


def payloads_for(values):
    return [struct.pack("<d", float(v)) for v in values]


@pytest.fixture
def server():
    srv = LoomServer(port=0, config=ServerConfig(shards=2)).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = LoomClient(
        "127.0.0.1", server.port, deadline_s=10.0, attempt_timeout_s=2.0
    )
    c.enable_source("cpu")
    c.add_index("cpu", "val", EDGES)
    yield c
    c.close()


def shard_storage(server, source):
    """Wrap one source's owning shard storage in a fault injector."""
    shard = server.shards[shard_of(source, len(server.shards))]
    log = shard.daemon.loom.record_log.log
    fault = FaultInjectingStorage(inner=log._storage)
    log._storage = fault
    return shard, fault


class TestEndToEnd:
    def test_ingest_sync_scan(self, client):
        assert client.ingest("cpu", payloads_for(range(50))) == 50
        client.sync("cpu")
        result = client.scan("cpu", ALL_TIME)
        assert result.count == 50
        values = sorted(
            struct.unpack("<d", r.payload)[0] for r in result.records
        )
        assert values == [float(v) for v in range(50)]

    def test_aggregates_match_values(self, client):
        client.ingest("cpu", payloads_for(range(1, 101)))
        client.sync("cpu")
        assert client.aggregate("cpu", "val", ALL_TIME, "count").value == 100
        assert client.aggregate("cpu", "val", ALL_TIME, "sum").value == 5050
        assert client.aggregate("cpu", "val", ALL_TIME, "mean").value == 50.5
        p50 = client.aggregate(
            "cpu", "val", ALL_TIME, "percentile", percentile=50
        )
        assert p50.value == 50.0
        # Query stats travel the wire (single-instance: never degraded).
        assert p50.stats.records_decoded + p50.stats.summaries_examined > 0
        assert not p50.stats.degraded
        assert p50.stats.missing_shards == []

    def test_indexed_scan_over_wire(self, client):
        client.ingest("cpu", payloads_for(range(100)))
        client.sync("cpu")
        result = client.scan_indexed("cpu", "val", ALL_TIME, (10.0, 20.0))
        values = [struct.unpack("<d", r.payload)[0] for r in result.records]
        # Same closed-interval semantics as the in-process operator.
        assert all(10.0 <= v <= 20.0 for v in values)
        assert len(values) == 11

    def test_histogram_and_bin_values(self, client):
        client.ingest("cpu", payloads_for(range(100)))
        client.sync("cpu")
        hist = client.histogram("cpu", "val", ALL_TIME)
        assert sum(hist.bins.values()) == 100
        spec = client.index_spec("cpu", "val")
        assert list(spec.edges) == EDGES
        target = min(b for b, c in hist.bins.items() if c)
        bv = client.bin_values("cpu", "val", ALL_TIME, target)
        assert bv.values == sorted(bv.values)
        assert len(bv.values) == hist.bins[target]

    def test_sources_hash_to_stable_shards(self, server, client):
        client.enable_source("mem")
        client.ingest("mem", payloads_for([1.0]))
        client.ingest("cpu", payloads_for([2.0]))
        client.sync()
        cpu_shard = shard_of("cpu", 2)
        mem_shard = shard_of("mem", 2)
        assert server.shards[cpu_shard].daemon.source("cpu")
        assert server.shards[mem_shard].daemon.source("mem")

    def test_auto_enable_on_first_ingest(self, client):
        assert client.ingest("fresh-source", payloads_for([1.0, 2.0])) == 2
        client.sync("fresh-source")
        assert client.scan("fresh-source", ALL_TIME).count == 2

    def test_unknown_index_is_loom_error_not_transport(self, client):
        with pytest.raises(LoomError):
            client.aggregate("cpu", "nope", ALL_TIME, "count")

    def test_unknown_wire_func_rejected(self, client):
        with pytest.raises(LoomError):
            client.add_index("cpu", "bad", EDGES, func="not-a-func")
        assert "f64_le" in WIRE_INDEX_FUNCS

    def test_health_and_introspect(self, client):
        client.ingest("cpu", payloads_for([1.0]))
        client.sync()
        assert client.health() is Health.HEALTHY
        detail = client.health_detail()
        assert len(detail["shards"]) == 2
        info = client.introspect()
        assert info["total_records"] == 1
        assert info["sources"]["cpu"] == 1

    def test_server_stats_exposition(self, client):
        client.ingest("cpu", payloads_for([1.0]))
        text = client.server_stats()
        assert "loom_server_queue_depth" in text
        assert "loom_server_connections" in text

    def test_concurrent_writers_multiplex(self, server):
        """Several clients ingest concurrently onto the same server."""
        errors = []

        def writer(idx):
            try:
                c = LoomClient(
                    "127.0.0.1", server.port, deadline_s=20.0,
                    client_id=f"w{idx}",
                )
                for batch in range(10):
                    c.ingest(f"src-{idx}", payloads_for(range(5)))
                c.sync(f"src-{idx}")
                assert c.scan(f"src-{idx}", ALL_TIME).count == 50
                c.close()
            except BaseException as exc:  # surfaced below
                errors.append((idx, exc))

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors


class TestIdempotentResend:
    def test_duplicate_seq_absorbed(self, server, client):
        client.ingest("cpu", payloads_for([1.0, 2.0]))
        # Replay the exact same (client, seq) pair manually.
        from repro.daemon.protocol import pack_payloads

        sizes, body = pack_payloads(payloads_for([1.0, 2.0]))
        header = {
            "op": "ingest",
            "source": "cpu",
            "client": client.client_id,
            "seq": client._seq,
            "sizes": sizes,
        }
        resp, _ = client._request(dict(header), body)
        assert resp["deduped"] is True
        client.sync("cpu")
        assert client.scan("cpu", ALL_TIME).count == 2
        shard = server.shards[shard_of("cpu", 2)]
        assert shard.dedup_hits.value >= 1

    def test_distinct_clients_do_not_collide(self, server):
        a = LoomClient("127.0.0.1", server.port, client_id="alpha")
        b = LoomClient("127.0.0.1", server.port, client_id="beta")
        a.ingest("cpu", payloads_for([1.0]))
        b.ingest("cpu", payloads_for([2.0]))  # same seq=1, different client
        a.sync("cpu")
        assert a.scan("cpu", ALL_TIME).count == 2
        a.close()
        b.close()

    def test_dedup_window_is_bounded(self, server, client):
        shard = server.shards[shard_of("cpu", 2)]
        window = server.config.dedup_window
        for _ in range(30):
            client.ingest("cpu", payloads_for([1.0]))
        client.sync("cpu")
        assert len(shard.dedup) <= window


class TestDeadlines:
    def test_deadline_exceeded_when_server_unreachable(self):
        # A port with no listener: connects fail, budget burns down.
        c = LoomClient(
            "127.0.0.1", 1, deadline_s=0.3, attempt_timeout_s=0.05,
            circuit_threshold=0,
        )
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            c.health()
        assert time.monotonic() - t0 < 5.0
        c.close()

    def test_deadline_propagates_to_server_query(self, server, client):
        """A query that cannot finish in budget returns a deadline error,
        not a hang."""
        shard, fault = shard_storage(server, "cpu")
        client.ingest("cpu", payloads_for(range(10)))
        client.sync("cpu")
        # Sync op waits behind the worker; stall the worker with a slow
        # control call, then issue a sync with a tiny budget.
        release = threading.Event()
        shard.queue.put(("call", lambda: release.wait(5), threading.Event(), {}))
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.sync("cpu", deadline_s=0.2)
        release.set()
        assert time.monotonic() - t0 < 5.0


class TestBackpressureOverload:
    def test_overload_sheds_and_recovers_exactly(self):
        """ACCEPTANCE: a writer outpacing a fault-slowed flusher receives
        RETRY_AFTER, the ingest queue never exceeds the high watermark,
        and the client retries to completion with zero lost and zero
        duplicated records."""
        cfg = ServerConfig(
            shards=1,
            queue_high_watermark=8,
            queue_low_watermark=2,
            retry_after_ms=5,
        )
        srv = LoomServer(
            port=0,
            config=cfg,
            loom_config=LoomConfig(chunk_size=512, record_block_size=1024),
        ).start()
        try:
            shard, fault = shard_storage(srv, "cpu")
            fault.delay_appends(0.005)  # the fault-slowed flusher
            client = LoomClient(
                "127.0.0.1", srv.port, deadline_s=60.0, attempt_timeout_s=2.0
            )
            client.enable_source("cpu")
            sent = 0
            max_depth = 0
            for i in range(150):
                client.ingest("cpu", payloads_for([float(i)] * 4))
                sent += 4
                max_depth = max(max_depth, int(shard.depth_gauge.value))
            # Backpressure actually engaged...
            assert client.backpressure_hits > 0
            assert shard.retry_afters.value > 0
            # ...and bounded the queue (the metrics gauge is the proof).
            assert max_depth <= cfg.queue_high_watermark + 1
            # Drain and verify exactly-once delivery.
            fault.make_reliable()
            client.sync("cpu")
            result = client.scan("cpu", ALL_TIME)
            assert result.count == sent  # zero lost
            values = [
                struct.unpack("<d", r.payload)[0] for r in result.records
            ]
            assert len(values) == len(set(zip(values, range(len(values)))))
            counts = {}
            for v in values:
                counts[v] = counts.get(v, 0) + 1
            assert all(c == 4 for c in counts.values())  # zero duplicated
            client.close()
        finally:
            srv.stop()


class TestServerHealthMachine:
    def test_degraded_shard_sheds_then_recovers(self):
        """DEGRADED -> RETRY_AFTER -> HEALTHY recovery after the flush
        retries succeed (the health machine seen from the wire)."""
        srv = LoomServer(
            port=0,
            config=ServerConfig(shards=1, retry_after_ms=5),
            loom_config=LoomConfig(
                chunk_size=256,
                record_block_size=512,
                threaded_flush=True,
                flush_retries=30,
                flush_backoff=0.001,
            ),
        ).start()
        try:
            shard, fault = shard_storage(srv, "cpu")
            client = LoomClient(
                "127.0.0.1",
                srv.port,
                deadline_s=30.0,
                attempt_timeout_s=1.0,
                circuit_threshold=0,
            )
            client.enable_source("cpu")
            client.ingest("cpu", payloads_for([1.0]))
            client.sync("cpu")
            # Storage goes bad: background flushes fail and retry, the
            # health machine holds DEGRADED for the whole fault window.
            fault.fail_next_appends(10**6)
            deadline = time.monotonic() + 10.0
            while (
                shard.daemon.health() is not Health.DEGRADED
                and time.monotonic() < deadline
            ):
                try:
                    client.ingest(
                        "cpu", payloads_for([2.0] * 8), deadline_s=0.3
                    )
                except DeadlineExceededError:
                    pass
            assert shard.daemon.health() is Health.DEGRADED
            # A DEGRADED shard sheds new ingest with RETRY_AFTER.
            status, retry_ms = shard.admit(
                "probe:1", "cpu", payloads_for([5.0])
            )
            assert status == "retry_after"
            assert retry_ms > 0
            # The storage heals; the pending flush retry succeeds and the
            # health machine returns to HEALTHY.
            fault.make_reliable()
            deadline = time.monotonic() + 10.0
            while (
                shard.daemon.health() is not Health.HEALTHY
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert shard.daemon.health() is Health.HEALTHY
            # And ingest flows again end to end.
            before = client.scan("cpu", ALL_TIME).count
            client.ingest("cpu", payloads_for([3.0]))
            client.sync("cpu")
            assert client.scan("cpu", ALL_TIME).count == before + 1
            client.close()
        finally:
            srv.stop()

    def test_failed_shard_refuses_ingest_serves_reads(self):
        srv = LoomServer(
            port=0,
            config=ServerConfig(shards=1),
            loom_config=LoomConfig(
                chunk_size=256, record_block_size=512, flush_retries=0
            ),
        ).start()
        try:
            shard, fault = shard_storage(srv, "cpu")
            client = LoomClient(
                "127.0.0.1", srv.port, deadline_s=5.0, attempt_timeout_s=1.0
            )
            client.enable_source("cpu")
            client.ingest("cpu", payloads_for(range(8)))
            client.sync("cpu")
            published = client.scan("cpu", ALL_TIME).count
            # Kill the storage permanently: the inline flush fails, the
            # shard's log goes FAILED.
            fault.fail_next_appends(10**6)
            with pytest.raises((StorageError, DeadlineExceededError)):
                for i in range(200):
                    client.ingest("cpu", payloads_for([float(i)] * 8))
            assert shard.daemon.health() is Health.FAILED
            assert client.health() is Health.FAILED
            # Reads over published data still work (graceful read-only
            # degradation over the wire).
            result = client.scan("cpu", ALL_TIME)
            assert result.count >= published
            # New ingest is refused outright with a storage error.
            with pytest.raises(StorageError):
                client.ingest("cpu", payloads_for([9.9]))
            client.close()
            # Heal before teardown so close()'s final flush can land.
            fault.make_reliable()
        finally:
            srv.stop()


class TestLifecycle:
    def test_restart_preserves_shard_state(self):
        srv = LoomServer(port=0).start()
        client = LoomClient("127.0.0.1", srv.port, deadline_s=5.0)
        client.enable_source("cpu")
        client.ingest("cpu", payloads_for([1.0, 2.0]))
        client.sync("cpu")
        port = srv.port
        srv.stop(close_daemons=False)
        srv.start()
        assert srv.port == port
        client2 = LoomClient("127.0.0.1", port, deadline_s=5.0)
        assert client2.scan("cpu", ALL_TIME).count == 2
        client.close()
        client2.close()
        srv.stop()

    def test_context_manager(self):
        with LoomServer(port=0) as srv:
            with LoomClient("127.0.0.1", srv.port) as c:
                assert c.health() is Health.HEALTHY
