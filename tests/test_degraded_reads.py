"""Degraded reads and shard quarantine across a networked Loom fleet.

The ACCEPTANCE scenario: three single-shard LoomServers behind one
LoomCoordinator; one node is partitioned away; ``global_aggregate`` and
``global_percentile`` still answer within the deadline, annotated
``degraded=True`` with the missing shard named — and become exact again
after the shard rejoins.  Plus coordinator-level quarantine/readmission
of FAILED nodes, over the wire and in-process.
"""

from __future__ import annotations

import struct
import time

import pytest

from repro.core.clock import VirtualClock
from repro.core.config import LoomConfig
from repro.core.faults import FaultInjectingStorage
from repro.core.hybridlog import Health
from repro.daemon import (
    LoomClient,
    LoomCoordinator,
    LoomServer,
    MonitoringDaemon,
    NodeRef,
    RemoteNode,
)

EDGES = [0.0, 10.0, 20.0, 30.0, 40.0]
ALL_TIME = (0, 2**63 - 1)


def payloads_for(values):
    return [struct.pack("<d", float(v)) for v in values]


@pytest.fixture
def fleet():
    """Three single-shard servers; node i holds values 10i .. 10i+9."""
    servers, nodes, clients = [], [], []
    for i in range(3):
        srv = LoomServer(port=0).start()
        client = LoomClient(
            "127.0.0.1",
            srv.port,
            deadline_s=2.0,
            attempt_timeout_s=0.2,
            circuit_threshold=0,
        )
        client.enable_source("lat")
        client.add_index("lat", "val", EDGES)
        client.ingest(
            "lat", payloads_for([10 * i + k for k in range(10)])
        )
        client.sync()
        servers.append(srv)
        clients.append(client)
        nodes.append(NodeRef(f"node{i}", RemoteNode(client)))
    coordinator = LoomCoordinator(nodes, failure_threshold=1)
    yield servers, clients, coordinator
    for client in clients:
        client.close()
    for srv in servers:
        srv.stop()


class TestHealthyFleet:
    def test_global_aggregate_exact(self, fleet):
        _, _, coord = fleet
        result = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert result.value == 30
        assert not result.stats.degraded
        assert result.stats.missing_shards == []
        assert coord.global_aggregate("lat", "val", ALL_TIME, "sum").value == sum(
            range(30)
        )
        assert coord.global_aggregate("lat", "val", ALL_TIME, "max").value == 29.0

    def test_global_percentile_exact(self, fleet):
        _, _, coord = fleet
        # Values are 0..29: p50 rank is ceil(0.5*30)=15 -> value 14.
        result = coord.global_percentile("lat", "val", ALL_TIME, 50)
        assert result.value == 14.0
        assert result.count == 30
        assert not result.stats.degraded

    def test_fan_out_scan_collects_all_nodes(self, fleet):
        _, _, coord = fleet
        out = coord.fan_out_scan("lat", ALL_TIME)
        assert sorted(out) == ["node0", "node1", "node2"]
        assert sum(len(r.records) for r in out.values()) == 30


class TestPartitionedFleet:
    def test_degraded_reads_with_missing_shard_named(self, fleet):
        """ACCEPTANCE: with 1 of 3 shards down, global aggregate and
        percentile return within the deadline with degraded=True and the
        missing shard named; results are exact again after rejoin."""
        servers, _, coord = fleet
        servers[1].stop(close_daemons=False)  # partition node1 away

        t0 = time.monotonic()
        agg = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        pct = coord.global_percentile("lat", "val", ALL_TIME, 50)
        elapsed = time.monotonic() - t0
        # Within deadline: the per-node budget is 2 s; a hung fleet call
        # would burn >= one budget per phase per node.
        assert elapsed < 10.0

        assert agg.value == 20  # the two answering nodes
        assert agg.stats.degraded
        assert agg.stats.missing_shards == ["node1"]
        # Survivor values are {0..9, 20..29}: p50 rank 10 -> value 9.
        assert pct.value == 9.0
        assert pct.stats.degraded
        assert pct.stats.missing_shards == ["node1"]

        # The failed node is quarantined (failure_threshold=1), so the
        # next query skips it without paying its timeout again.
        assert coord.quarantined_nodes() == ["node1"]
        t0 = time.monotonic()
        coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert time.monotonic() - t0 < 1.0

        # Rejoin: same port, same shard state; probe readmits.
        servers[1].start()
        probe = coord.probe()
        assert probe["node1"] == "healthy"
        assert coord.quarantined_nodes() == []
        agg = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert agg.value == 30
        assert not agg.stats.degraded
        pct = coord.global_percentile("lat", "val", ALL_TIME, 50)
        assert pct.value == 14.0
        assert not pct.stats.degraded

    def test_fan_out_scan_marks_missing_node(self, fleet):
        servers, _, coord = fleet
        servers[2].stop(close_daemons=False)
        out = coord.fan_out_scan("lat", ALL_TIME)
        assert out["node2"].records is None
        assert out["node2"].stats.degraded
        assert out["node2"].stats.missing_shards == ["node2"]
        assert len(out["node0"].records) == 10
        servers[2].start()

    def test_mean_weights_survivors_only(self, fleet):
        servers, _, coord = fleet
        servers[0].stop(close_daemons=False)
        result = coord.global_aggregate("lat", "val", ALL_TIME, "mean")
        # Survivors hold 10..29 -> mean 19.5.
        assert result.value == pytest.approx(19.5)
        assert result.stats.degraded
        servers[0].start()


class TestQuarantineReadmission:
    """Coordinator membership over in-process daemons: quarantine of
    FAILED shards, explicit and probe-driven readmission."""

    def _fleet(self):
        daemons = []
        for i in range(3):
            daemon = MonitoringDaemon(
                config=LoomConfig(chunk_size=256, record_block_size=512),
                clock=VirtualClock(1),
            )
            daemon.enable_source("lat")
            daemon.add_index(
                "lat",
                "val",
                lambda p: struct.unpack("<d", p)[0],
                EDGES,
            )
            for k in range(10):
                daemon.clock.advance(10)
                daemon.receive("lat", struct.pack("<d", float(10 * i + k)))
            daemon.sync()
            daemons.append(daemon)
        nodes = [NodeRef(f"node{i}", d) for i, d in enumerate(daemons)]
        return daemons, LoomCoordinator(nodes, failure_threshold=2)

    def test_failed_node_is_quarantined_by_probe(self):
        daemons, coord = self._fleet()
        # Drive node1's log to FAILED: storage dies, flush exhausts.
        log = daemons[1].loom.record_log.log
        fault = FaultInjectingStorage(inner=log._storage)
        log._storage = fault
        fault.fail_next_appends(10**6)
        with pytest.raises(Exception):
            for k in range(200):
                daemons[1].clock.advance(10)
                daemons[1].receive("lat", struct.pack("<d", 1.0))
        assert daemons[1].health() is Health.FAILED
        probe = coord.probe()
        assert probe["node1"] == "failed"
        assert coord.quarantined_nodes() == ["node1"]
        # Quarantined: fan-out skips it but names it.
        result = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert result.value == 20
        assert result.stats.missing_shards == ["node1"]
        fault.make_reliable()

    def test_consecutive_failures_reach_threshold(self):
        daemons, coord = self._fleet()

        class Exploding:
            def __getattr__(self, name):
                raise ConnectionError("node down")

        # Swap node2's backend for one that always fails at the wire.
        coord.nodes[2] = NodeRef("node2", Exploding())
        assert coord.quarantined_nodes() == []
        coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert coord.quarantined_nodes() == []  # 1 failure < threshold 2
        coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert coord.quarantined_nodes() == ["node2"]

    def test_explicit_readmission_resets_failures(self):
        daemons, coord = self._fleet()
        coord.quarantine("node0")
        result = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert result.value == 20
        assert result.stats.missing_shards == ["node0"]
        coord.readmit("node0")
        result = coord.global_aggregate("lat", "val", ALL_TIME, "count")
        assert result.value == 30
        assert not result.stats.degraded

    def test_probe_readmits_recovered_node(self):
        daemons, coord = self._fleet()
        coord.quarantine("node0")
        probe = coord.probe()
        assert probe["node0"] == "healthy"
        assert coord.quarantined_nodes() == []

    def test_percentile_drops_node_failing_phase_two(self):
        """A node that answers the histogram phase but dies before the
        bin-values phase is dropped entirely — its phase-1 histogram is
        discarded so rank arithmetic stays consistent."""
        daemons, coord = self._fleet()

        class DiesInPhaseTwo:
            def __init__(self, daemon):
                self._daemon = daemon

            def index_spec(self, *a, **k):
                return self._daemon.index_spec(*a, **k)

            def histogram(self, *a, **k):
                return self._daemon.histogram(*a, **k)

            def bin_values(self, *a, **k):
                raise ConnectionError("died between phases")

        coord.nodes[1] = NodeRef("node1", DiesInPhaseTwo(daemons[1]))
        result = coord.global_percentile("lat", "val", ALL_TIME, 50)
        # Identical to node1 being gone entirely: survivors {0..9,20..29},
        # rank ceil(.5*20)=10 -> 9.0; count covers survivors only.
        assert result.value == 9.0
        assert result.count == 20
        assert result.stats.degraded
        assert result.stats.missing_shards == ["node1"]
