#!/usr/bin/env python3
"""Reacting to changing workloads by redefining indexes (paper §5.3).

A histogram index encodes expectations about the data's value range.
When the workload shifts (here: a latency regression moves the
distribution an order of magnitude up), the old bins stop discriminating
— everything piles into the high outlier bin and indexed scans degrade
toward full-window scans.  The §5.3 flow fixes this *without touching
ingest*: close the stale index, define a fresh histogram; new chunks are
indexed with the new bins while old data remains queryable.

Run:  python examples/changing_workload.py
"""

from repro.core import QueryStats
from repro.core.clock import micros
from repro.core.histogram import exponential_edges
from repro.core.operators import indexed_scan
from repro.daemon import MonitoringDaemon
from repro.workloads import events, latency_stream


def tail_scan_stats(daemon, index_name, t_range, threshold):
    """Indexed scan for latencies >= threshold, returning work counters."""
    loom = daemon.loom
    index = loom.record_log.get_index(daemon.index_id("syscall", index_name))
    stats = QueryStats()
    records = list(
        indexed_scan(
            loom.snapshot(), events.SRC_SYSCALL, index,
            t_range[0], t_range[1], v_min=threshold, stats=stats,
        )
    )
    return records, stats


def main() -> None:
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)

    # Histogram sized for the healthy regime: syscalls of ~2-200 µs.
    daemon.add_index("syscall", "latency", events.latency_value,
                     exponential_edges(2.0, 200.0, 12))

    # --- healthy period -------------------------------------------------
    healthy = latency_stream(5_000, 10.0, median_us=10.0, sigma=0.6, seed=1)
    daemon.replay(healthy)
    healthy_end = daemon.clock.now()
    records, stats = tail_scan_stats(
        daemon, "latency", (0, healthy_end), threshold=100.0
    )
    print("healthy period (well-sized histogram):")
    print(f"  tail scan (>=100 µs): {len(records)} records, scanned "
          f"{stats.records_scanned:,}, skipped {stats.chunks_skipped} chunks")

    # --- regression: latencies jump 20x ---------------------------------
    regressed = latency_stream(
        5_000, 10.0, median_us=200.0, sigma=0.6,
        t_start_ns=healthy_end + 1, seed=2,
    )
    daemon.replay(regressed)
    regressed_end = daemon.clock.now()
    records, stats = tail_scan_stats(
        daemon, "latency", (healthy_end, regressed_end), threshold=2_000.0
    )
    print("\nafter a 20x latency regression (stale histogram):")
    print(f"  tail scan (>=2000 µs): {len(records)} records, scanned "
          f"{stats.records_scanned:,}, skipped {stats.chunks_skipped} chunks")
    print("  nearly every record now lands in the high outlier bin, so the "
          "chunk index cannot skip anything")
    stale_scanned = stats.records_scanned

    # --- §5.3: redefine the index for the new regime --------------------
    daemon.redefine_index("syscall", "latency", events.latency_value,
                          exponential_edges(40.0, 4_000.0, 12))
    print("\nredefined the index with bins for the new regime "
          "(no ingest interruption, old data not re-indexed)")

    more = latency_stream(
        5_000, 10.0, median_us=200.0, sigma=0.6,
        t_start_ns=regressed_end + 1, seed=3,
    )
    daemon.replay(more)
    records, stats = tail_scan_stats(
        daemon, "latency", (regressed_end, daemon.clock.now()), threshold=2_000.0
    )
    print("\nnew data under the fresh histogram:")
    print(f"  tail scan (>=2000 µs): {len(records)} records, scanned "
          f"{stats.records_scanned:,}, skipped {stats.chunks_skipped} chunks")
    assert stats.records_scanned < stale_scanned
    print(f"  scanning dropped from {stale_scanned:,} to "
          f"{stats.records_scanned:,} records — the new bins discriminate again")

    daemon.close()


if __name__ == "__main__":
    main()
