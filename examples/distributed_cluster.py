#!/usr/bin/env python3
"""Distributed Loom: a coordinator over per-host instances (paper §8).

The paper sketches the multi-node extension: per-host Loom instances
compute intermediate results locally; a coordinator merges them.  This
example runs three "hosts", each capturing its own syscall latency
stream, and answers fleet-wide questions:

* distributive aggregates (count/max/mean) by merging per-node partials;
* an **exact global p99.9** by merging per-node *bin histograms* (tiny)
  to locate the target bin, then fetching only that bin's values — raw
  telemetry never leaves a node except for the one bin that matters;
* a cross-node scan around an anomaly window.

Run:  python examples/distributed_cluster.py
"""

import numpy as np

from repro.daemon import LoomCoordinator, MonitoringDaemon, NodeRef
from repro.workloads import events, latency_stream


def make_host(name: str, seed: int, median_us: float) -> NodeRef:
    daemon = MonitoringDaemon()
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.add_index("syscall", "latency", events.latency_value,
                     [5.0, 20.0, 80.0, 320.0, 1280.0])
    stream = latency_stream(3_000, 5.0, median_us=median_us, sigma=0.8, seed=seed)
    daemon.replay(stream)
    return NodeRef(name, daemon)


def main() -> None:
    # host-c is the outlier: its median latency is 4x the others.
    nodes = [
        make_host("host-a", seed=1, median_us=10.0),
        make_host("host-b", seed=2, median_us=12.0),
        make_host("host-c", seed=3, median_us=45.0),
    ]
    coordinator = LoomCoordinator(nodes)
    t_range = (0, max(n.daemon.clock.now() for n in nodes))

    print("fleet-wide aggregates (merged from per-node partials):")
    for method in ("count", "max", "mean"):
        value = coordinator.global_aggregate("syscall", "latency", t_range, method)
        print(f"  {method:>5}: {value:,.2f}")

    p999 = coordinator.global_percentile("syscall", "latency", t_range, 99.9)
    print(f"  global p99.9 = {p999:.2f} µs")

    # Verify exactness against a full gather (which the coordinator never
    # actually needs to do).
    all_values = []
    for node in nodes:
        records = node.daemon.loom.raw_scan(events.SRC_SYSCALL, t_range)
        all_values.extend(events.latency_value(r.payload) for r in records)
    reference = float(np.percentile(all_values, 99.9, method="inverted_cdf"))
    assert p999 == reference
    print(f"  (matches a full gather exactly: {reference:.2f} µs — but the "
          "coordinator moved only bin counts plus one bin's values)")

    # Per-host contribution to the global tail: which host is sick?
    print("\nper-host mean latency (drill-down):")
    for node in nodes:
        handle = node.daemon.source("syscall")
        index_id = node.daemon.index_id("syscall", "latency")
        mean = node.daemon.loom.indexed_aggregate(
            handle.source_id, index_id, t_range, "mean"
        ).value
        marker = "  <-- outlier host" if mean > 30 else ""
        print(f"  {node.name}: {mean:7.2f} µs{marker}")

    scans = coordinator.fan_out_scan("syscall", (t_range[1] - 10**9, t_range[1]))
    total = sum(len(v) for v in scans.values())
    print(f"\ncross-node scan of the last virtual second: {total:,} records "
          f"from {len(scans)} hosts")


if __name__ == "__main__":
    main()
