#!/usr/bin/env python3
"""Loom as a drop-in telemetry backend behind an OTel-style collector
(paper §5), queried through the CLI front-end (paper §3).

A web service emits spans for two RPC endpoints plus a memory metric.
The collector routes everything into Loom via the exporter adapter; an
engineer then investigates a latency complaint interactively with CLI
commands, and finally drills into the slow spans' trace ids — the step a
streaming-aggregation pipeline cannot do because it discards raw events.

Run:  python examples/otel_service_monitoring.py
"""

import numpy as np

from repro.core.clock import micros, seconds
from repro.daemon import (
    LoomCli,
    MonitoringDaemon,
    OtelLoomExporter,
    OtelMetricPoint,
    OtelSpan,
)


def main() -> None:
    daemon = MonitoringDaemon()
    exporter = OtelLoomExporter(daemon)
    cli = LoomCli(daemon)
    rng = np.random.default_rng(8)

    # --- the service runs: spans + metrics stream into the collector ----
    slow_trace_ids = []
    for i in range(20_000):
        daemon.clock.advance(micros(100))
        endpoint = "GET /search" if i % 4 else "POST /checkout"
        duration = float(rng.lognormal(np.log(150), 0.6))
        # A slow dependency intermittently hits /checkout.
        if endpoint == "POST /checkout" and rng.random() < 0.002:
            duration = float(rng.uniform(30_000, 60_000))
            slow_trace_ids.append(i)
        exporter.export_span(OtelSpan(endpoint, trace_id=i, duration_us=duration))
        if i % 100 == 0:
            exporter.export_metric(
                OtelMetricPoint("process.memory.rss", 256.0 + i / 1000.0)
            )
    daemon.sync()
    print(f"collector exported {exporter.spans_exported:,} spans and "
          f"{exporter.metrics_exported:,} metric points into Loom\n")

    # --- the engineer investigates through the CLI ----------------------
    for command in (
        "sources",
        'count "otel.span.POST /checkout" last 2s',
        'agg "otel.span.POST /checkout" duration mean last 2s',
        'pct "otel.span.POST /checkout" duration 99.9 last 2s',
        'pct "otel.span.GET /search" duration 99.9 last 2s',
    ):
        result = cli.execute(command)
        print(f"loom> {command}")
        print(f"{result.text}\n")

    # --- drill down: which traces were slow? ----------------------------
    t_range = (0, daemon.clock.now())
    slow = exporter.slow_spans("POST /checkout", t_range, threshold_us=10_000.0)
    print(f"slow /checkout spans (>10ms): {len(slow)} "
          f"(injected: {len(slow_trace_ids)})")
    for span in slow[:5]:
        print(f"  trace {span.trace_id:#x}: {span.duration_us/1000:.1f} ms")
    found = {s.trace_id for s in slow}
    assert found == set(slow_trace_ids), "drill-down must recover every slow trace"
    print("\nevery injected slow trace recovered — raw events were retained, "
          "not aggregated away.")
    daemon.close()


if __name__ == "__main__":
    main()
