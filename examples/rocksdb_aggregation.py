#!/usr/bin/env python3
"""The RocksDB case study (paper Figure 10b): aggregation drill-down.

Based on a classic Linux page-cache debugging session: a RocksDB
deployment shows latency spikes; the engineer aggregates request
latencies, then pread64 syscall latencies (~3% of the data), then counts
page-cache insertions (~0.5% of the data) to confirm cache misses.

Every answer below is computed two ways — through Loom's indexed
aggregates and from the generator's ground truth — and they match
exactly, including the 99.99th percentiles (Loom's percentiles are exact,
not approximations, despite being index-accelerated).

Run:  python examples/rocksdb_aggregation.py
"""

from repro.analysis import subset_percentile
from repro.core.histogram import exponential_edges
from repro.core.operators import bin_histogram
from repro.daemon import MonitoringDaemon
from repro.workloads import RocksDbCaseStudy, events

SCALE = 1e-3


def main() -> None:
    workload = RocksDbCaseStudy(scale=SCALE, phase_duration_s=10.0)
    daemon = MonitoringDaemon()
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("pagecache", events.SRC_PAGECACHE)
    daemon.add_index("app", "latency", events.latency_value,
                     exponential_edges(0.5, 500.0, 16))
    # Subset index: pread64 latency, everything else mapped to a sentinel
    # below the histogram (lands in the outlier bin; see
    # repro.analysis.queries for how subset percentiles use this).
    daemon.add_index(
        "syscall", "pread-latency",
        lambda p: (events.latency_value(p)
                   if events.latency_kind(p) == events.SYS_PREAD64 else -1.0),
        exponential_edges(0.5, 1000.0, 16),
    )
    daemon.add_index("pagecache", "kind", events.pagecache_kind,
                     [1.0, 2.0, 3.0, 4.0])

    phases = workload.generate_all()
    for phase in phases:
        daemon.replay(phase.records)
        print(f"phase {phase.phase}: ingested {phase.record_count:,} records")

    loom = daemon.loom

    # --- Phase 1: request latency aggregates ---------------------------
    p1 = phases[0]
    t1 = (p1.t_start_ns, p1.t_end_ns)
    app_index = daemon.index_id("app", "latency")
    max_result = loom.indexed_aggregate(events.SRC_APP, app_index, t1, "max")
    tail_result = loom.indexed_aggregate(
        events.SRC_APP, app_index, t1, "percentile", percentile=99.99
    )
    print("\nphase 1 — application request latency:")
    print(f"  max    = {max_result.value:8.2f} µs  "
          f"(truth {p1.truth['app_max_us']:8.2f})")
    print(f"  p99.99 = {tail_result.value:8.2f} µs  "
          f"(truth {p1.truth['app_p9999_us']:8.2f})")
    print(f"  served from {tail_result.stats.summaries_aggregated} chunk "
          f"summaries; scanned {tail_result.stats.records_scanned:,} records")

    # --- Phase 2: pread64 subset aggregates (~3% of the data) ----------
    p2 = phases[1]
    t2 = (p2.t_start_ns, p2.t_end_ns)
    pread_index = daemon.index_id("syscall", "pread-latency")
    pread_max = loom.indexed_aggregate(
        events.SRC_SYSCALL, pread_index, t2, "max"
    )
    pread_tail = subset_percentile(
        loom, events.SRC_SYSCALL, pread_index, t2, 99.99
    )
    print("\nphase 2 — pread64 latency (bimodal: cache hits vs misses):")
    print(f"  max    = {pread_max.value:8.2f} µs  "
          f"(truth {p2.truth['pread_max_us']:8.2f})")
    print(f"  p99.99 = {pread_tail:8.2f} µs  "
          f"(truth {p2.truth['pread_p9999_us']:8.2f})")

    # --- Phase 3: page-cache insertion count (~0.5% of the data) -------
    p3 = phases[2]
    t3 = (p3.t_start_ns, p3.t_end_ns)
    kind_index = loom.record_log.get_index(daemon.index_id("pagecache", "kind"))
    counts = bin_histogram(
        loom.snapshot(), events.SRC_PAGECACHE, kind_index, t3[0], t3[1]
    )
    adds = counts.get(1, 0)  # kind 1 = mm_filemap_add_to_page_cache
    print("\nphase 3 — page-cache events:")
    print(f"  mm_filemap_add_to_page_cache count = {adds} "
          f"(truth {int(p3.truth['pagecache_add_count'])})")
    print("  answered from chunk-summary bin counts "
          "(the paper: 'Loom uses counts stored in chunk summaries')")

    assert max_result.value == p1.truth["app_max_us"]
    assert tail_result.value == p1.truth["app_p9999_us"]
    assert pread_max.value == p2.truth["pread_max_us"]
    assert pread_tail == p2.truth["pread_p9999_us"]
    assert adds == int(p3.truth["pagecache_add_count"])
    print("\nall Loom answers match the ground truth exactly.")


if __name__ == "__main__":
    main()
