#!/usr/bin/env python3
"""The paper's motivating investigation (§2.1), end to end.

A performance engineer sees occasional high Redis tail latency.  Using a
monitoring daemon embedding Loom, they iteratively drill down:

  Phase 1  capture application request latency; find requests above the
           99.99th percentile.
  Phase 2  add eBPF syscall latency capture; correlate slow requests with
           slow ``recvfrom`` executions.
  Phase 3  add client TCP packet capture; dump packets around the slow
           requests and discover mangled destination ports — the buggy
           packet filter.

The workload generator plants the ground truth (six slow requests caused
by six mangled packets among millions of records); the drill-down below
recovers all of them from complete captured data.  The same investigation
is impossible on sampled data (run with --sampled to see Figure 3's
failure mode).

Run:  python examples/redis_drilldown.py [--sampled]
"""

import sys

from repro.analysis import correlate_windows, records_above_percentile
from repro.core.clock import millis, seconds
from repro.core.histogram import exponential_edges
from repro.daemon import MonitoringDaemon
from repro.workloads import RedisCaseStudy, events, uniform_sample

SCALE = 1e-3  # thin the paper's rates 1000x; virtual time stays exact


def main(sampled: bool = False) -> None:
    workload = RedisCaseStudy(scale=SCALE, phase_duration_s=10.0)
    daemon = MonitoringDaemon()

    # The engineer enables sources as the investigation deepens; here we
    # enable all three up front and replay the phases in order.
    daemon.enable_source("app", events.SRC_APP)
    daemon.enable_source("syscall", events.SRC_SYSCALL)
    daemon.enable_source("packet", events.SRC_PACKET)
    daemon.add_index("app", "latency", events.latency_value,
                     exponential_edges(10.0, 10_000.0, 16))
    daemon.add_index("syscall", "latency", events.latency_value,
                     exponential_edges(1.0, 10_000.0, 16))

    print("capturing three phases of telemetry "
          f"({'10% sampled' if sampled else 'complete'})...")
    needles = []
    for phase in workload.generate_all():
        records = phase.records
        if sampled:
            records = uniform_sample(records, 0.1, seed=7)
        daemon.replay(records)
        needles.extend(phase.needles)
        rate = workload.active_rate(phase.phase)
        print(f"  phase {phase.phase}: {len(records):,} records "
              f"(paper-scale rate {rate/1e6:.2f}M rec/s)")

    loom = daemon.loom
    t_all = (0, daemon.clock.now())

    # ------------------------------------------------------------------
    # Step 1: requests above the 99.99th-percentile latency
    # ------------------------------------------------------------------
    total_app = loom.source_record_count(events.SRC_APP)
    pct = 100.0 * (1.0 - max(1, len(needles)) / max(1, total_app))
    threshold, slow_requests = records_above_percentile(
        loom, events.SRC_APP, daemon.index_id("app", "latency"), t_all, pct
    )
    print(f"\nstep 1: {len(slow_requests)} requests above "
          f"p{pct:.2f} = {threshold:.0f} µs" if threshold else
          "\nstep 1: no data captured!")

    # ------------------------------------------------------------------
    # Step 2: correlate with slow recvfrom syscalls just before each
    # ------------------------------------------------------------------
    report = correlate_windows(
        loom, slow_requests, events.SRC_SYSCALL,
        window_before_ns=millis(1), window_after_ns=0,
        predicate=lambda r: (
            events.latency_kind(r.payload) == events.SYS_RECVFROM
            and events.latency_value(r.payload) > 10_000.0
        ),
    )
    print(f"step 2: {report.correlated_count}/{report.anchor_count} slow "
          "requests have a slow recvfrom in the preceding millisecond")

    # ------------------------------------------------------------------
    # Step 3: packet dump around each slow request -> mangled ports
    # ------------------------------------------------------------------
    found_mangled = 0
    for anchor in slow_requests:
        window = (anchor.timestamp - seconds(5), anchor.timestamp + seconds(5))
        packets = loom.raw_scan(events.SRC_PACKET, window)
        mangled = [
            p for p in packets
            if events.unpack_packet(p.payload)[1] == events.MANGLED_PORT
        ]
        if mangled:
            found_mangled += 1
            nearest = min(mangled, key=lambda p: abs(p.timestamp - anchor.timestamp))
            seq = events.unpack_packet(nearest.payload)[4]
            print(f"step 3: slow request at t={anchor.timestamp/1e9:.3f}s -> "
                  f"mangled packet seq={seq:#x} "
                  f"(dst port {events.MANGLED_PORT}, expected {events.REDIS_PORT})")

    # ------------------------------------------------------------------
    # Verdict against the planted ground truth
    # ------------------------------------------------------------------
    print(f"\nground truth: {len(needles)} slow requests caused by mangled packets")
    print(f"found: {len(slow_requests)} slow requests, "
          f"{found_mangled} with their mangled packet")
    if found_mangled == len(needles):
        print("root cause identified: a buggy packet filter is mangling "
              "destination ports.")
    else:
        print("investigation FAILED: the needles were lost "
              "(this is what sampling does — see Figure 3).")


if __name__ == "__main__":
    main(sampled="--sampled" in sys.argv[1:])
