#!/usr/bin/env python3
"""Quickstart: capture and query high-frequency telemetry with Loom.

This walks the full Figure 9 API surface on a small synthetic stream:

1. define a source and a histogram index,
2. push records,
3. run the three query operators (raw scan, indexed scan, indexed
   aggregate — including an exact percentile), and
4. inspect Loom's resource footprint.

Run:  python examples/quickstart.py
"""

import random
import struct

from repro import HistogramSpec, Loom, LoomConfig, VirtualClock
from repro.core.clock import micros, seconds

VALUE = struct.Struct("<d")

LATENCY_SOURCE = 1


def main() -> None:
    # A virtual clock makes the example deterministic; drop it (Loom then
    # uses the monotonic clock) for live capture.
    clock = VirtualClock()
    loom = Loom(LoomConfig(chunk_size=16 * 1024), clock=clock)

    # --- schema: one source, one histogram index over its latency ------
    loom.define_source(LATENCY_SOURCE)
    latency_index = loom.define_index(
        LATENCY_SOURCE,
        index_func=lambda payload: VALUE.unpack(payload)[0],
        bins=[1.0, 10.0, 100.0, 1_000.0],  # µs edges; Loom adds outlier bins
    )

    # --- ingest: 50k latency records over 5 virtual seconds ------------
    rng = random.Random(42)
    for _ in range(50_000):
        latency_us = rng.lognormvariate(mu=3.0, sigma=1.0)  # median ~20 µs
        loom.push(LATENCY_SOURCE, VALUE.pack(latency_us))
        clock.advance(micros(100))  # 10k records/virtual second
    loom.sync()  # make everything queryable

    t_all = (0, clock.now())
    print(f"ingested {loom.total_records:,} records "
          f"({loom.footprint()['record_log_bytes']:,} bytes in the record log)")

    # --- indexed aggregates: served largely from chunk summaries -------
    for method in ("count", "min", "max", "mean"):
        result = loom.indexed_aggregate(LATENCY_SOURCE, latency_index, t_all, method)
        print(f"  {method:>5}: {result.value:,.2f}")

    p999 = loom.indexed_aggregate(
        LATENCY_SOURCE, latency_index, t_all, "percentile", percentile=99.9
    )
    print(f"  p99.9: {p999.value:.2f} µs (exact, via the bin-CDF walk; "
          f"scanned {p999.stats.records_scanned:,} of {loom.total_records:,} records)")

    # --- indexed range scan: the slow tail ------------------------------
    slow = loom.indexed_scan(
        LATENCY_SOURCE, latency_index, t_all, (p999.value, float("inf"))
    )
    print(f"  {len(slow)} records at or above p99.9")

    # --- raw scan: everything in the last virtual second ---------------
    last_second = (clock.now() - seconds(1), clock.now())
    recent = loom.raw_scan(LATENCY_SOURCE, last_second)
    print(f"  {len(recent):,} records in the last virtual second")

    # --- footprint: the layered indexes are tiny vs the record log -----
    fp = loom.footprint()
    print("footprint:")
    print(f"  record log      {fp['record_log_bytes']:>12,} B")
    print(f"  chunk index     {fp['chunk_index_bytes']:>12,} B "
          f"({fp['finalized_chunks']} summaries)")
    print(f"  timestamp index {fp['timestamp_index_bytes']:>12,} B "
          f"({fp['timestamp_entries']} entries)")

    loom.close()


if __name__ == "__main__":
    main()
